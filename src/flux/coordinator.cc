#include "src/flux/coordinator.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>
#include <utility>

#include "src/base/bytes.h"
#include "src/flux/telemetry.h"

namespace flux {
namespace {

// Wire cost of a ref chunk: the 16-byte content hash the dedup path ships
// instead of a chunk the guest cache already holds.
constexpr uint64_t kRefBytes = 16;

ByteSpan AsBytes(const std::string& s) {
  return ByteSpan(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

}  // namespace

// One modeled fleet device: AP attachment, CPU speed, and a real (verified,
// LRU) ChunkCache standing in for its content-addressed store.
struct MigrationCoordinator::FleetDevice {
  explicit FleetDevice(const FleetDeviceSpec& s)
      : spec(s), cache(s.cache_budget_bytes) {}

  FleetDeviceSpec spec;
  ChunkCache cache;
  std::unordered_set<FleetDeviceId> paired;
  bool busy = false;
};

// One modeled app. Chunk content is identified by (app, chunk index,
// generation); the write load bumps generations round-robin over the hot
// set, accrued lazily from `last_dirt_at`.
struct MigrationCoordinator::FleetApp {
  explicit FleetApp(const FleetAppSpec& s) : spec(s), home(s.home) {}

  FleetAppSpec spec;
  FleetDeviceId home;
  std::vector<uint32_t> generations;  // sized lazily to ChunkCount
  // Memoized ChunkHash(ChunkSeed(app, i, generations[i])), updated eagerly
  // as AccrueDirt bumps generations. Placement probes and checkpoint cuts
  // used to recompute these per probe — at 100k-fleet scale the seed
  // formatting + hashing dominated the profile.
  std::vector<Hash128> chunk_hashes;
  SimTime last_dirt_at = 0;
  uint64_t dirt_carry_bytes = 0;  // sub-chunk residue between accruals
  uint32_t next_hot = 0;          // round-robin cursor over the hot set
  bool migrating = false;         // queued or in flight
};

struct MigrationCoordinator::PendingMigration {
  uint64_t key = 0;
  FleetAppId app = 0;
  FleetDeviceId home = 0;
  FleetDeviceId guest = kNoFleetDevice;  // kNoFleetDevice = place at admit
  bool explicit_guest = false;
  SimTime submitted = 0;
  SimTime admitted = 0;
  // Filled at the checkpoint cut.
  uint64_t wire_bytes = 0;
  uint32_t chunks = 0;
  uint32_t warm_chunks = 0;
  SimDuration cpu_post = 0;
  std::vector<std::string> seeds;  // per-chunk content at the cut
  std::vector<Hash128> hashes;
  ContendedFabric::FlowId flow = ContendedFabric::kInvalidFlow;
  EventId dirty_event;
  bool cut_done = false;
  // Minted at admission; zero while the request is still queued.
  TraceContext ctx;
};

struct MigrationCoordinator::PendingPairing {
  uint64_t key = 0;
  FleetDeviceId a = 0;
  FleetDeviceId b = 0;
  SimTime submitted = 0;
  SimTime admitted = 0;
  ContendedFabric::FlowId flow = ContendedFabric::kInvalidFlow;
};

MigrationCoordinator::MigrationCoordinator(EventScheduler* scheduler,
                                           ContendedFabric* fabric,
                                           CoordinatorConfig config)
    : scheduler_(scheduler), fabric_(fabric), config_(std::move(config)) {
  assert(scheduler_ != nullptr);
  assert(fabric_ != nullptr);
  if (config_.trace != nullptr) {
    using namespace trace_names;
    Tracer* t = config_.trace;
    ctr_requested_ = t->counter(kFleetMigrationsRequested);
    ctr_admitted_ = t->counter(kFleetMigrationsAdmitted);
    ctr_completed_ = t->counter(kFleetMigrationsCompleted);
    ctr_refused_ = t->counter(kFleetMigrationsRefused);
    ctr_pairings_ = t->counter(kFleetPairingsCompleted);
    ctr_probes_ = t->counter(kFleetPlacementProbes);
    ctr_warm_chunks_ = t->counter(kFleetPlacementWarmChunks);
    ctr_wire_bytes_ = t->counter(kFleetWireBytes);
    ctr_dirty_bursts_ = t->counter(kFleetDirtyBursts);
    hist_queue_wait_ = t->histogram(kHistFleetQueueWait);
    hist_concurrency_ = t->histogram(kHistFleetConcurrency);
  }
}

// Out of line for the unique_ptrs of types private to this file. Scheduled
// events close over `this`, so the scheduler must not run past the
// coordinator's lifetime (benches and tests drain it first).
MigrationCoordinator::~MigrationCoordinator() = default;

FleetDeviceId MigrationCoordinator::AddDevice(const FleetDeviceSpec& spec) {
  devices_.push_back(std::make_unique<FleetDevice>(spec));
  return static_cast<FleetDeviceId>(devices_.size() - 1);
}

FleetAppId MigrationCoordinator::AddApp(const FleetAppSpec& spec) {
  assert(spec.home < devices_.size());
  auto app = std::make_unique<FleetApp>(spec);
  app->last_dirt_at = now();
  apps_.push_back(std::move(app));
  return static_cast<FleetAppId>(apps_.size() - 1);
}

void MigrationCoordinator::MarkPaired(FleetDeviceId a, FleetDeviceId b) {
  assert(a < devices_.size() && b < devices_.size() && a != b);
  devices_[a]->paired.insert(b);
  devices_[b]->paired.insert(a);
}

bool MigrationCoordinator::IsPaired(FleetDeviceId a, FleetDeviceId b) const {
  return a < devices_.size() && b < devices_.size() &&
         devices_[a]->paired.count(b) != 0;
}

uint32_t MigrationCoordinator::ShardOf(FleetDeviceId device) const {
  return device % static_cast<uint32_t>(scheduler_->shards());
}

std::string MigrationCoordinator::ChunkSeed(const FleetApp& app, uint32_t chunk,
                                            uint32_t generation) {
  std::string seed;
  seed.reserve(app.spec.name.size() + 24);
  seed.append(app.spec.name);
  seed.push_back('/');
  seed.append(std::to_string(chunk));
  seed.push_back('/');
  seed.append(std::to_string(generation));
  return seed;
}

Hash128 MigrationCoordinator::ChunkHash(const std::string& seed) {
  return FluxHash128(AsBytes(seed));
}

uint32_t MigrationCoordinator::ChunkCount(const FleetApp& app) const {
  const uint64_t chunk = std::max<uint64_t>(config_.chunk_bytes, 1);
  return static_cast<uint32_t>(
      std::max<uint64_t>(1, (app.spec.image_bytes + chunk - 1) / chunk));
}

void MigrationCoordinator::AccrueDirt(FleetApp& app, SimTime upto) {
  const uint32_t chunks = ChunkCount(app);
  if (app.generations.size() != chunks) {
    app.generations.assign(chunks, 0);
    app.chunk_hashes.resize(chunks);
    for (uint32_t i = 0; i < chunks; ++i) {
      app.chunk_hashes[i] = ChunkHash(ChunkSeed(app, i, 0));
    }
  }
  if (upto <= app.last_dirt_at) {
    return;
  }
  const double elapsed_s =
      ToSecondsF(static_cast<SimDuration>(upto - app.last_dirt_at));
  app.last_dirt_at = upto;
  const uint64_t written =
      app.dirt_carry_bytes +
      static_cast<uint64_t>(elapsed_s * app.spec.dirty_bytes_per_s);
  const uint64_t chunk = std::max<uint64_t>(config_.chunk_bytes, 1);
  uint64_t dirtied = written / chunk;
  app.dirt_carry_bytes = written % chunk;
  const uint32_t hot = std::max<uint32_t>(
      1, static_cast<uint32_t>(app.spec.hot_fraction * chunks));
  // More writes than the hot set in one window just re-dirties it; extra
  // laps change nothing observable, so collapse them.
  dirtied = std::min<uint64_t>(dirtied, hot);
  for (uint64_t i = 0; i < dirtied; ++i) {
    app.next_hot = (app.next_hot + 1) % hot;
    ++app.generations[app.next_hot];
    app.chunk_hashes[app.next_hot] = ChunkHash(
        ChunkSeed(app, app.next_hot, app.generations[app.next_hot]));
  }
}

SimDuration MigrationCoordinator::CpuCost(double cpu_factor, uint64_t bytes,
                                          double mbps) const {
  if (mbps <= 0 || bytes == 0) {
    return 0;
  }
  const double factor = cpu_factor > 0 ? cpu_factor : 1.0;
  return FromSecondsF(static_cast<double>(bytes) / (mbps * 1e6 * factor));
}

bool MigrationCoordinator::RequestPairing(FleetDeviceId a, FleetDeviceId b) {
  if (a >= devices_.size() || b >= devices_.size() || a == b) {
    return false;
  }
  auto req = std::make_unique<PendingPairing>();
  req->key = next_key_++;
  req->a = a;
  req->b = b;
  req->submitted = now();
  pairing_queue_.push_back(req->key);
  pending_pairings_[req->key] = std::move(req);
  PumpQueues();
  return true;
}

bool MigrationCoordinator::RequestMigration(FleetAppId app_id,
                                            FleetDeviceId guest) {
  FLUX_TRACE_COUNTER_ADD(ctr_requested_, 1);
  if (app_id >= apps_.size()) {
    FLUX_TRACE_COUNTER_ADD(ctr_refused_, 1);
    return false;
  }
  FleetApp& app = *apps_[app_id];
  const bool explicit_guest = guest != kNoFleetDevice;
  const bool bad_guest =
      explicit_guest && (guest >= devices_.size() || guest == app.home ||
                         devices_[app.home]->paired.count(guest) == 0);
  if (app.migrating || bad_guest ||
      (!explicit_guest && devices_[app.home]->paired.empty())) {
    FLUX_TRACE_COUNTER_ADD(ctr_refused_, 1);
    return false;
  }
  app.migrating = true;
  auto req = std::make_unique<PendingMigration>();
  req->key = next_key_++;
  req->app = app_id;
  req->home = app.home;
  req->guest = guest;
  req->explicit_guest = explicit_guest;
  req->submitted = now();
  migration_queue_.push_back(req->key);
  pending_migrations_[req->key] = std::move(req);
  PumpQueues();
  return true;
}

FleetDeviceId MigrationCoordinator::AppHome(FleetAppId app) const {
  return app < apps_.size() ? apps_[app]->home : kNoFleetDevice;
}

bool MigrationCoordinator::AppMigrating(FleetAppId app) const {
  return app < apps_.size() && apps_[app]->migrating;
}

bool MigrationCoordinator::DeviceBusy(FleetDeviceId device) const {
  return device < devices_.size() && devices_[device]->busy;
}

std::vector<TraceContext> MigrationCoordinator::InflightContexts() const {
  // Walk the admitted-context side table (bounded by the concurrency cap),
  // not pending_migrations_: queued entries have no context yet and
  // outnumber admitted ones by orders of magnitude at fleet scale. The
  // table's order is the deterministic admission/completion interleaving —
  // identical across serial and threaded drivers, which replay the same
  // event sequence — so no per-sample sort is needed here (it blew the ≤1%
  // sampler budget); the JSON exporter canonicalizes order instead.
  std::vector<TraceContext> out;
  out.reserve(admitted_ctxs_.size());
  for (const auto& [key, ctx] : admitted_ctxs_) {
    out.push_back(ctx);
  }
  return out;
}

FleetDeviceId MigrationCoordinator::PlaceGuest(const FleetApp& app) {
  const FleetDevice& home = *devices_[app.home];
  FleetDeviceId best = kNoFleetDevice;
  uint32_t best_warm = 0;
  int best_load = 0;
  const uint32_t chunks = ChunkCount(app);
  for (FleetDeviceId cand : home.paired) {
    FleetDevice& dev = *devices_[cand];
    if (dev.busy) {
      continue;
    }
    // The dedup manifest probe: how many of the app's current chunk hashes
    // does this candidate's cache hold? (HasValid verifies content, so a
    // poisoned entry reads as cold here exactly as it would on the wire.)
    // Every caller runs AccrueDirt first, so the memoized hashes are sized
    // and current — no per-probe seed hashing.
    assert(app.chunk_hashes.size() == chunks);
    uint32_t warm = 0;
    for (uint32_t i = 0; i < chunks; ++i) {
      if (dev.cache.HasValid(app.chunk_hashes[i])) {
        ++warm;
      }
    }
    FLUX_TRACE_COUNTER_ADD(ctr_probes_, chunks);
    const int load = fabric_->ActiveFlows(dev.spec.ap);
    const bool better =
        best == kNoFleetDevice || warm > best_warm ||
        (warm == best_warm &&
         (load < best_load || (load == best_load && cand < best)));
    if (better) {
      best = cand;
      best_warm = warm;
      best_load = load;
    }
  }
  return best;
}

void MigrationCoordinator::PumpQueues() {
  // Pairings first (they unlock placement candidates), then migrations;
  // FIFO within each queue, skipping entries whose devices are busy rather
  // than letting one blocked pair head-of-line block the fleet.
  for (auto it = pairing_queue_.begin();
       it != pairing_queue_.end() &&
       active_pairings_ < config_.max_concurrent_pairings;) {
    PendingPairing& req = *pending_pairings_.at(*it);
    if (devices_[req.a]->busy || devices_[req.b]->busy) {
      ++it;
      continue;
    }
    const uint64_t key = *it;
    it = pairing_queue_.erase(it);
    AdmitPairing(std::move(*pending_pairings_.at(key)));
  }
  for (auto it = migration_queue_.begin();
       it != migration_queue_.end() &&
       active_migrations_ < config_.max_concurrent_migrations;) {
    PendingMigration& req = *pending_migrations_.at(*it);
    if (devices_[req.home]->busy) {
      ++it;
      continue;
    }
    FleetDeviceId guest = req.guest;
    if (req.explicit_guest) {
      if (devices_[guest]->busy) {
        ++it;
        continue;
      }
    } else {
      AccrueDirt(*apps_[req.app], now());
      guest = PlaceGuest(*apps_[req.app]);
      if (guest == kNoFleetDevice) {
        ++it;
        continue;
      }
    }
    const uint64_t key = *it;
    it = migration_queue_.erase(it);
    AdmitMigration(std::move(*pending_migrations_.at(key)), guest);
  }
}

void MigrationCoordinator::AdmitMigration(PendingMigration req,
                                          FleetDeviceId guest) {
  const uint64_t key = req.key;
  req.guest = guest;
  req.admitted = now();
  FleetApp& app = *apps_[req.app];
  FleetDevice& home = *devices_[req.home];
  // Admission is where the migration becomes causally real: mint its trace
  // context here, salted by the request key so two admissions of the same
  // app/pair at the same instant still get distinct identities.
  req.ctx = MintTraceContext(app.spec.name, home.spec.name,
                             devices_[guest]->spec.name, req.admitted, key);
  admitted_ctx_index_[key] = admitted_ctxs_.size();
  admitted_ctxs_.emplace_back(key, req.ctx);
  home.busy = true;
  devices_[guest]->busy = true;
  ++active_migrations_;
  peak_concurrency_ =
      std::max(peak_concurrency_, active_migrations_ + active_pairings_);
  FLUX_TRACE_COUNTER_ADD(ctr_admitted_, 1);
  FLUX_TRACE_HIST_RECORD(hist_queue_wait_,
                         static_cast<uint64_t>(req.admitted - req.submitted));
  FLUX_TRACE_HIST_RECORD(hist_concurrency_,
                         static_cast<uint64_t>(active_migrations_));
  if (config_.trace != nullptr && config_.trace_spans) {
    FLUX_TRACE_EMIT_ON_TRACK_CTX(config_.trace,
                                 trace_names::kSpanCoordQueueWait,
                                 trace_names::kTrackCoordinator, req.submitted,
                                 req.admitted, req.ctx);
  }

  AccrueDirt(app, now());
  // cpu_pre: prepare + checkpoint serialize + compress on the home CPU.
  // Compression cost is charged for the full image here; the manifest probe
  // at the cut decides what actually hits the wire.
  const SimDuration cpu_pre =
      config_.prepare_fixed +
      CpuCost(home.spec.cpu_factor, app.spec.image_bytes,
              config_.serialize_mbps) +
      CpuCost(home.spec.cpu_factor, app.spec.image_bytes,
              config_.compress_mbps);
  const uint32_t shard = ShardOf(req.home);
  pending_migrations_[key] = std::make_unique<PendingMigration>(std::move(req));
  PendingMigration& live = *pending_migrations_[key];
  // Both per-migration events are staged on the home's shard: their run
  // phases only touch state this migration owns, so the parallel driver
  // may overlap them with other migrations' events.
  live.dirty_event = scheduler_->ScheduleStagedAfter(
      config_.dirty_burst_period,
      StagedEvent{[this, key] { DirtyBurst(key); }, EventFn{}}, shard);
  scheduler_->ScheduleStagedAfter(
      cpu_pre,
      StagedEvent{[this, key] { OnCheckpointCut(key); },
                  [this, key] { OnCheckpointCutCommit(key); }},
      shard);
}

void MigrationCoordinator::DirtyBurst(uint64_t migration_key) {
  auto it = pending_migrations_.find(migration_key);
  if (it == pending_migrations_.end() || it->second->cut_done) {
    return;
  }
  PendingMigration& mig = *it->second;
  AccrueDirt(*apps_[mig.app], now());
  FLUX_TRACE_COUNTER_ADD(ctr_dirty_bursts_, 1);
  mig.dirty_event = scheduler_->ScheduleStagedAfter(
      config_.dirty_burst_period,
      StagedEvent{[this, migration_key] { DirtyBurst(migration_key); },
                  EventFn{}},
      ShardOf(mig.home));
}

void MigrationCoordinator::OnCheckpointCut(uint64_t migration_key) {
  // Staged run phase: the expensive part of the cut — seed formatting,
  // cache probes/inserts, wire math — against state only this migration
  // touches (its app, its two busy devices). The fabric flow starts in the
  // serial commit below.
  PendingMigration& mig = *pending_migrations_.at(migration_key);
  mig.cut_done = true;
  if (mig.dirty_event) {
    scheduler_->Cancel(mig.dirty_event);  // same-shard: mailbox settles it
    mig.dirty_event = EventId{};
  }
  FleetApp& app = *apps_[mig.app];
  AccrueDirt(app, now());
  FleetDevice& home = *devices_[mig.home];
  FleetDevice& guest = *devices_[mig.guest];

  // Manifest probe against the chosen guest: warm chunks ship as refs.
  const uint32_t chunks = ChunkCount(app);
  mig.chunks = chunks;
  mig.seeds.reserve(chunks);
  mig.hashes.reserve(chunks);
  for (uint32_t i = 0; i < chunks; ++i) {
    mig.seeds.push_back(ChunkSeed(app, i, app.generations[i]));
    mig.hashes.push_back(app.chunk_hashes[i]);
    if (guest.cache.HasValid(mig.hashes.back())) {
      ++mig.warm_chunks;
    }
    // The home just serialized this chunk, so its own store holds it —
    // that's what makes the return hop of a ping-pong find a warm cache.
    home.cache.Insert(mig.hashes.back(), AsBytes(mig.seeds.back()));
  }
  FLUX_TRACE_COUNTER_ADD(ctr_probes_, chunks);
  FLUX_TRACE_COUNTER_ADD(ctr_warm_chunks_, mig.warm_chunks);

  const uint64_t cold_raw =
      static_cast<uint64_t>(chunks - mig.warm_chunks) * config_.chunk_bytes;
  mig.wire_bytes =
      static_cast<uint64_t>(cold_raw * app.spec.compress_ratio) +
      static_cast<uint64_t>(mig.warm_chunks) * kRefBytes;
  // cpu_post: decompress the cold bytes + restore the image on the guest
  // CPU, plus reintegration.
  mig.cpu_post =
      CpuCost(guest.spec.cpu_factor, cold_raw, config_.decompress_mbps) +
      CpuCost(guest.spec.cpu_factor, app.spec.image_bytes,
              config_.restore_mbps) +
      config_.reintegrate_fixed;
}

void MigrationCoordinator::OnCheckpointCutCommit(uint64_t migration_key) {
  PendingMigration& mig = *pending_migrations_.at(migration_key);
  const FleetDevice& home = *devices_[mig.home];
  const FleetDevice& guest = *devices_[mig.guest];
  const uint64_t peak =
      std::min(home.spec.link_peak_bps, guest.spec.link_peak_bps);
  mig.flow = fabric_->StartFlow(now(), mig.wire_bytes, peak, home.spec.ap,
                                guest.spec.ap);
  if (mig.flow == ContendedFabric::kInvalidFlow) {
    // Fully deduped: nothing to put on the wire.
    scheduler_->ScheduleStagedAfter(
        mig.cpu_post,
        StagedEvent{
            [this, migration_key] { OnMigrationDone(migration_key); },
            [this, migration_key] { OnMigrationDoneCommit(migration_key); }},
        ShardOf(mig.guest));
    return;
  }
  flow_to_migration_[mig.flow] = migration_key;
  ScheduleFabricWakeup();
}

void MigrationCoordinator::ScheduleFabricWakeup() {
  if (fabric_wakeup_) {
    scheduler_->Cancel(fabric_wakeup_);
    fabric_wakeup_ = EventId{};
  }
  SimTime when = 0;
  if (fabric_->NextCompletion(now(), &when)) {
    fabric_wakeup_ =
        scheduler_->ScheduleAt(when, [this] { OnFlowsSettled(); });
  }
}

void MigrationCoordinator::OnFlowsSettled() {
  fabric_wakeup_ = EventId{};
  std::vector<ContendedFabric::FinishedFlow> done;
  fabric_->Settle(now(), &done);
  for (const ContendedFabric::FinishedFlow& fin : done) {
    if (auto it = flow_to_migration_.find(fin.id);
        it != flow_to_migration_.end()) {
      const uint64_t key = it->second;
      flow_to_migration_.erase(it);
      PendingMigration& mig = *pending_migrations_.at(key);
      scheduler_->ScheduleStagedAfter(
          mig.cpu_post,
          StagedEvent{[this, key] { OnMigrationDone(key); },
                      [this, key] { OnMigrationDoneCommit(key); }},
          ShardOf(mig.guest));
    } else if (auto pit = flow_to_pairing_.find(fin.id);
               pit != flow_to_pairing_.end()) {
      const uint64_t key = pit->second;
      flow_to_pairing_.erase(pit);
      OnPairingFlowDone(key);
    }
  }
  ScheduleFabricWakeup();
}

void MigrationCoordinator::OnMigrationDone(uint64_t migration_key) {
  // Staged run phase: the guest restored every chunk, so its
  // content-addressed store now holds all of them — this is what
  // placement's manifest probe sees on the way back. The guest is still
  // busy under this migration, so its cache is ours to warm.
  PendingMigration& mig = *pending_migrations_.at(migration_key);
  FleetDevice& guest = *devices_[mig.guest];
  for (uint32_t i = 0; i < mig.chunks; ++i) {
    guest.cache.Insert(mig.hashes[i], AsBytes(mig.seeds[i]));
  }
}

void MigrationCoordinator::OnMigrationDoneCommit(uint64_t migration_key) {
  auto node = pending_migrations_.extract(migration_key);
  if (auto idx = admitted_ctx_index_.find(migration_key);
      idx != admitted_ctx_index_.end()) {
    const size_t slot = idx->second;
    admitted_ctx_index_.erase(idx);
    if (slot + 1 != admitted_ctxs_.size()) {
      admitted_ctxs_[slot] = admitted_ctxs_.back();
      admitted_ctx_index_[admitted_ctxs_[slot].first] = slot;
    }
    admitted_ctxs_.pop_back();
  }
  PendingMigration& mig = *node.mapped();
  FleetApp& app = *apps_[mig.app];
  FleetDevice& guest = *devices_[mig.guest];

  app.home = mig.guest;
  app.migrating = false;
  app.last_dirt_at = now();
  devices_[mig.home]->busy = false;
  guest.busy = false;
  --active_migrations_;

  FLUX_TRACE_COUNTER_ADD(ctr_completed_, 1);
  FLUX_TRACE_COUNTER_ADD(ctr_wire_bytes_, mig.wire_bytes);
  if (config_.trace != nullptr && config_.trace_spans) {
    FLUX_TRACE_EMIT_ON_TRACK_CTX(config_.trace,
                                 trace_names::kSpanCoordMigration,
                                 trace_names::kTrackCoordinator, mig.admitted,
                                 now(), mig.ctx);
  }

  FleetMigrationRecord rec;
  rec.app = mig.app;
  rec.home = mig.home;
  rec.guest = mig.guest;
  rec.submitted = mig.submitted;
  rec.admitted = mig.admitted;
  rec.completed = now();
  rec.wire_bytes = mig.wire_bytes;
  rec.chunks = mig.chunks;
  rec.warm_chunks = mig.warm_chunks;
  rec.ctx = mig.ctx;
  completed_.push_back(rec);

  PumpQueues();
}

void MigrationCoordinator::AdmitPairing(PendingPairing req) {
  const uint64_t key = req.key;
  req.admitted = now();
  devices_[req.a]->busy = true;
  devices_[req.b]->busy = true;
  ++active_pairings_;
  peak_concurrency_ =
      std::max(peak_concurrency_, active_migrations_ + active_pairings_);
  const uint64_t wire = static_cast<uint64_t>(
      static_cast<double>(config_.pairing_wire_bytes) * config_.pairing_scale);
  const FleetDevice& a = *devices_[req.a];
  const FleetDevice& b = *devices_[req.b];
  const uint64_t peak = std::min(a.spec.link_peak_bps, b.spec.link_peak_bps);
  req.flow = fabric_->StartFlow(now(), wire, peak, a.spec.ap, b.spec.ap);
  const ContendedFabric::FlowId flow = req.flow;
  pending_pairings_[key] = std::make_unique<PendingPairing>(std::move(req));
  if (flow == ContendedFabric::kInvalidFlow) {
    FinishPairing(key);
    return;
  }
  flow_to_pairing_[flow] = key;
  ScheduleFabricWakeup();
}

void MigrationCoordinator::OnPairingFlowDone(uint64_t pairing_key) {
  FinishPairing(pairing_key);
}

void MigrationCoordinator::FinishPairing(uint64_t pairing_key) {
  auto node = pending_pairings_.extract(pairing_key);
  PendingPairing& req = *node.mapped();
  MarkPaired(req.a, req.b);
  // The framework sync seeds each side's cache with the chunks of every app
  // homed on the partner — the warm-start that makes placement prefer
  // previously-paired guests.
  for (const auto& app_ptr : apps_) {
    FleetApp& app = *app_ptr;
    FleetDeviceId target = kNoFleetDevice;
    if (app.home == req.a) {
      target = req.b;
    } else if (app.home == req.b) {
      target = req.a;
    } else {
      continue;
    }
    AccrueDirt(app, now());
    const uint32_t chunks = ChunkCount(app);
    for (uint32_t i = 0; i < chunks; ++i) {
      const std::string seed = ChunkSeed(app, i, app.generations[i]);
      devices_[target]->cache.Insert(app.chunk_hashes[i], AsBytes(seed));
    }
  }
  devices_[req.a]->busy = false;
  devices_[req.b]->busy = false;
  --active_pairings_;
  ++pairings_completed_;
  FLUX_TRACE_COUNTER_ADD(ctr_pairings_, 1);
  if (config_.trace != nullptr && config_.trace_spans) {
    FLUX_TRACE_EMIT_ON_TRACK(config_.trace, trace_names::kSpanCoordPairing,
                             trace_names::kTrackCoordinator, req.submitted,
                             now());
  }
  PumpQueues();
}

}  // namespace flux
