// Fleet telemetry (OBSERVABILITY.md §time-series / §slo).
//
// The Tracer answers "what did this run total?"; this module answers "what
// was the fleet doing at t=42s?" and "is it healthy?". Three parts:
//
//  1. TimeSeriesSampler — snapshots every counter and histogram of the
//     attached tracers at a configurable sim-time cadence (default 250
//     virtual ms) into a bounded ring, from which windowed rates
//     (migrations/s, wire MB/s, rollback rate, retransmit ratio) are
//     derived. Sampling is read-only against relaxed atomics: it never
//     touches the simulated clock or any simulated state, so a run with a
//     sampler attached is bit-identical to one without (the three-config
//     byte-identity contract).
//
//  2. MintTraceContext — the deterministic mint for the 128-bit causal
//     TraceContext (declared in trace.h): a hash of the migration's
//     endpoints, package, and submission sim-time. No wall clock, no
//     randomness; reruns produce identical IDs.
//
//  3. SloMonitor — evaluates declared objectives (p99 latency bounds,
//     rate bounds, ratio bounds) over each sampling window, emits
//     `slo.breach` flight events carrying the breaching window's context
//     IDs, and renders a fleet health report.
//
// Exporters: a JSON time-series file (schema "flux.timeseries.v1", gated
// by scripts/check_telemetry.py) and OpenMetrics-style text, both via
// WriteTimeSeries. TracerStatsJson/WriteTracerStats (the end-of-run
// `--stats-out` merge the bench harness wraps) also live here so unit
// tests can link them without the harness.
//
// Like trace/flight_recorder, this library depends only on flux_base.
#ifndef FLUX_SRC_FLUX_TELEMETRY_H_
#define FLUX_SRC_FLUX_TELEMETRY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/sim_clock.h"
#include "src/flux/flight_recorder.h"
#include "src/flux/trace.h"

namespace flux {

// Deterministic mint for a migration's causal context: hashes (package,
// home, guest, submission sim-time, salt). `salt` disambiguates several
// submissions of the same tuple at the same instant (the coordinator
// passes its request key). Never returns the zero context.
TraceContext MintTraceContext(std::string_view package, std::string_view home,
                              std::string_view guest, SimTime at,
                              uint64_t salt = 0);

// ----- time-series sampler -----

// One ring slot: everything the attached tracers knew at `at`, plus the
// causal contexts in flight (from the context provider, when set).
// Counter/histogram values are indexed by the owning sampler's interned
// counter_names()/histogram_names() tables — index-vector samples keep the
// per-sample cost to table lookups plus flat copies, no string or node
// allocation (the ≤1% host-overhead budget). The tables are append-only;
// a sample taken before a name was first seen is shorter than the table,
// so an out-of-range index means "not yet registered at sample time".
struct TelemetrySample {
  uint64_t seq = 0;  // absolute sample index; survives ring drops
  SimTime at = 0;
  std::vector<uint64_t> counters;
  std::vector<TraceHistogram::Snapshot> histograms;
  std::vector<TraceContext> contexts;
};

class TimeSeriesSampler {
 public:
  struct Options {
    SimDuration cadence = Millis(250);
    size_t capacity = 4096;  // ring bound; oldest samples drop
  };

  explicit TimeSeriesSampler(const SimClock* clock);
  TimeSeriesSampler(const SimClock* clock, Options options);

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  // Attaches a tracer; counters/histograms with the same name are summed
  // across attached tracers at sample time (the --stats-out merge rule).
  void Attach(const Tracer* tracer);
  // Optional: called at each sample to record the contexts in flight
  // (e.g. MigrationCoordinator::InflightContexts). SLO breaches cite them.
  void SetContextProvider(std::function<std::vector<TraceContext>()> provider);

  // Takes a sample if at least one cadence has elapsed since the last one
  // (or none was ever taken). Hook this wherever sim time advances: a
  // recurring scheduler event in fleet runs, MigrationConfig::
  // telemetry_poll on the single-migration tick path.
  void Poll();
  // Takes a sample unconditionally (run-end flush).
  void SampleNow();

  const SimClock* clock() const { return clock_; }
  SimDuration cadence() const { return options_.cadence; }
  const std::deque<TelemetrySample>& samples() const { return samples_; }
  uint64_t taken() const { return taken_; }
  uint64_t dropped() const { return dropped_; }
  // Host seconds spent inside sampling — the numerator of the ≤1% overhead
  // budget check (scripts/check_telemetry.py).
  double host_seconds() const { return host_seconds_; }

  // The interned name tables TelemetrySample vectors are indexed by
  // (append-only, first-seen order; sorted within one sample's arrivals
  // because the tracer registries iterate name-sorted).
  const std::vector<std::string>& counter_names() const {
    return counter_names_;
  }
  const std::vector<std::string>& histogram_names() const {
    return histogram_names_;
  }
  // Named lookups into one sample; 0 / nullptr when the name was not
  // registered at sample time.
  uint64_t CounterAt(const TelemetrySample& sample,
                     std::string_view name) const;
  const TraceHistogram::Snapshot* HistogramAt(const TelemetrySample& sample,
                                              std::string_view name) const;

 private:
  size_t CounterIndex(std::string_view name);
  size_t HistogramIndex(std::string_view name);

  const SimClock* clock_;
  Options options_;
  std::vector<const Tracer*> tracers_;
  std::function<std::vector<TraceContext>()> context_provider_;
  std::deque<TelemetrySample> samples_;
  std::vector<std::string> counter_names_;
  std::map<std::string, size_t, std::less<>> counter_index_;
  std::vector<std::string> histogram_names_;
  std::map<std::string, size_t, std::less<>> histogram_index_;
  // Reused accumulation buffers, so a steady-state sample allocates only
  // its own vector copies.
  std::vector<uint64_t> counter_scratch_;
  std::vector<TraceHistogram::Snapshot> histogram_scratch_;
  SimTime last_sample_ = 0;
  bool have_sample_ = false;
  uint64_t taken_ = 0;
  uint64_t dropped_ = 0;
  double host_seconds_ = 0;
};

// Windowed rates between adjacent samples. MB = 1e6 bytes.
struct TelemetryWindowRates {
  SimTime begin = 0;
  SimTime end = 0;
  double migrations_per_s = 0;   // Δ completed migrations / window s
  double wire_mb_per_s = 0;      // Δ (net + fleet) wire bytes / window s
  double rollback_rate = 0;      // Δ rollbacks / Δ completed (0 if none)
  double retransmit_ratio = 0;   // Δ resume retransmit / Δ resume lost bytes
};
std::vector<TelemetryWindowRates> DeriveWindowRates(
    const TimeSeriesSampler& sampler);

// ----- SLO health monitor -----

struct SloObjective {
  enum class Kind {
    kHistogramP99,   // p99 of `metric`'s windowed delta must stay <= bound
    kWindowRate,     // Δ`metric` per window second must stay <= bound
    kCounterRatio,   // Δ`metric` / Δ`denominator` must stay <= bound
  };
  std::string name;         // e.g. "migration.perceived_p99_us"
  Kind kind = Kind::kHistogramP99;
  std::string metric;       // histogram or numerator counter name
  std::string denominator;  // kCounterRatio only
  double bound = 0;         // inclusive ceiling; value > bound breaches
};

// The default catalog mirrors the headline claims the benches gate:
// sub-second p99 perceived time, zero rollbacks, and resume retransmits
// bounded by 1.2x the lost bytes (OBSERVABILITY.md §slo).
std::vector<SloObjective> DefaultSloCatalog();

struct SloBreach {
  std::string objective;
  size_t window = 0;   // index of the breaching window (1-based sample idx)
  SimTime begin = 0;
  SimTime end = 0;
  double value = 0;
  double bound = 0;
  TraceContext ctx;    // a context in flight during the window; may be zero
};

class SloMonitor {
 public:
  // Breaches are recorded and, when `recorder` is non-null, emitted as
  // `slo.breach` flight events (warning severity, a0/a1 = ctx hi/lo,
  // detail = objective name) stamped with the breaching context.
  SloMonitor(std::vector<SloObjective> objectives,
             FlightRecorder* recorder = nullptr);

  // Evaluates every not-yet-seen adjacent sample pair in the ring.
  // Incremental: safe to call repeatedly as the run progresses.
  void Evaluate(const TimeSeriesSampler& sampler);

  const std::vector<SloObjective>& objectives() const { return objectives_; }
  const std::vector<SloBreach>& breaches() const { return breaches_; }
  uint64_t windows_evaluated() const { return windows_evaluated_; }

  // Human-readable fleet health report: per objective, windows evaluated,
  // breach count, and worst observed value against the bound.
  std::string HealthReportText() const;

 private:
  std::vector<SloObjective> objectives_;
  FlightRecorder* recorder_;
  std::vector<SloBreach> breaches_;
  std::map<std::string, double> worst_;  // objective -> worst value seen
  uint64_t windows_evaluated_ = 0;
  uint64_t next_window_ = 1;  // first unevaluated sample index
};

// ----- causal-stitch records -----

// One migration's stitch record: the minted context plus the distinct
// contexts actually observed on the spans and on each device's flight
// ring. check_telemetry.py asserts each migration resolves to exactly one
// context and that home and guest agree on it.
struct StitchRecord {
  std::string label;
  TraceContext ctx;
  std::vector<std::string> span_ctxs;   // distinct non-zero ctx hex on spans
  std::vector<std::string> home_ctxs;   // distinct non-zero ctx hex, home ring
  std::vector<std::string> guest_ctxs;  // distinct non-zero ctx hex, guest ring
  size_t spans_stamped = 0;
  size_t home_events_stamped = 0;
  size_t guest_events_stamped = 0;
};
StitchRecord BuildStitchRecord(std::string_view label, const TraceContext& ctx,
                               const Tracer* tracer,
                               const std::vector<FlightEventView>& home_events,
                               const std::vector<FlightEventView>& guest_events);

// ----- exporters -----

struct TimeSeriesExport {
  struct Series {
    std::string label;
    const TimeSeriesSampler* sampler = nullptr;
  };
  std::vector<Series> series;
  const SloMonitor* monitor = nullptr;      // "slo" section when non-null
  const FlightRecorder* recorder = nullptr; // "breach_events" section
  std::vector<StitchRecord> stitch;         // "stitch" section when non-empty
  double run_host_seconds = 0;              // overhead budget denominator
};

// Schema "flux.timeseries.v1" (OBSERVABILITY.md documents it; scripts/
// check_telemetry.py gates it in CI).
std::string TimeSeriesJson(const TimeSeriesExport& exp);
// OpenMetrics-style text: one `flux_<counter>_total{series="..."} value
// timestamp` line per counter per sample, sim-seconds timestamps.
std::string OpenMetricsText(const TimeSeriesExport& exp);
// Writes TimeSeriesJson to `path` and OpenMetricsText to `<path>.om`.
bool WriteTimeSeries(const TimeSeriesExport& exp, const char* path);

// ----- end-of-run stats merge (--stats-out) -----

// Merged counter/histogram JSON across tracers. Counters sum; histograms
// merge snapshots. "counters" lists every registered counter including
// zero-valued ones; "zero_counters" names them explicitly so a consumer
// can distinguish registered-but-zero from never-registered (absence from
// "counters" means the subsystem never registered it — i.e. never ran).
// Histogram entries carry count/max/p50/p90/p99 (unchanged) plus "sum"
// and the raw 64-entry power-of-two "buckets" array for re-binning.
std::string TracerStatsJson(const std::vector<const Tracer*>& tracers);
bool WriteTracerStats(const std::vector<const Tracer*>& tracers,
                      const char* path);

}  // namespace flux

#endif  // FLUX_SRC_FLUX_TELEMETRY_H_
