#include "src/flux/flux_agent.h"

namespace flux {

FluxAgent::FluxAgent(Device& device)
    : device_(device),
      recorder_(&device.record_rules()),
      replayer_(device),
      chunk_cache_(device.profile().chunk_cache_budget_bytes) {
  recorder_.set_clock(&device.clock());
  recorder_.Arm(device.binder());
  recorder_.set_flight_recorder(&device.flight_recorder());
  chunk_cache_.set_flight_recorder(&device.flight_recorder());
}

FluxAgent::~FluxAgent() { recorder_.Disarm(device_.binder()); }

void FluxAgent::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  recorder_.set_tracer(tracer);
  replayer_.set_tracer(tracer);
  chunk_cache_.set_tracer(tracer);
  device_.binder().set_tracer(tracer);
}

void FluxAgent::Manage(Pid pid, const std::string& package) {
  recorder_.TrackApp(pid, package);
}

void FluxAgent::Unmanage(Pid pid) { recorder_.UntrackApp(pid); }

bool FluxAgent::IsPairedWith(const std::string& device_name) const {
  return paired_.count(device_name) > 0;
}

void FluxAgent::MarkPaired(const std::string& device_name) {
  paired_.insert(device_name);
}

std::string FluxAgent::PairRoot(const std::string& home_device_name) {
  return "/data/flux/pair/" + home_device_name;
}

}  // namespace flux
