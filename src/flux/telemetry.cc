#include "src/flux/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

#include "src/base/hash.h"

namespace flux {
namespace {

// Seed for the context mint; any fixed value works, it just keeps
// migration contexts out of the hash space the chunk cache uses.
constexpr uint64_t kContextSeed = 0x666c75782d637478ull;  // "flux-ctx"

uint64_t CounterDelta(const TimeSeriesSampler& sampler,
                      const TelemetrySample& prev, const TelemetrySample& cur,
                      std::string_view name) {
  const uint64_t a = sampler.CounterAt(prev, name);
  const uint64_t b = sampler.CounterAt(cur, name);
  return b >= a ? b - a : 0;
}

// Windowed histogram delta: counts and buckets subtract (counters are
// monotonic); max is not subtractable, so the cumulative max stands in as
// an upper bound for the interpolation clamp.
TraceHistogram::Snapshot HistogramDelta(const TimeSeriesSampler& sampler,
                                        const TelemetrySample& prev,
                                        const TelemetrySample& cur,
                                        std::string_view name) {
  TraceHistogram::Snapshot d;
  const TraceHistogram::Snapshot* ci = sampler.HistogramAt(cur, name);
  if (ci == nullptr) {
    return d;
  }
  d = *ci;
  const TraceHistogram::Snapshot* pi = sampler.HistogramAt(prev, name);
  if (pi != nullptr) {
    const TraceHistogram::Snapshot& p = *pi;
    d.count -= std::min(d.count, p.count);
    d.sum -= std::min(d.sum, p.sum);
    for (int b = 0; b < TraceHistogram::kBuckets; ++b) {
      d.buckets[b] -= std::min(d.buckets[b], p.buckets[b]);
    }
  }
  return d;
}

void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string JsonStr(std::string_view s) {
  std::string out = "\"";
  AppendEscaped(out, s);
  out += "\"";
  return out;
}

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string_view SloKindName(SloObjective::Kind kind) {
  switch (kind) {
    case SloObjective::Kind::kHistogramP99:
      return "histogram_p99";
    case SloObjective::Kind::kWindowRate:
      return "window_rate";
    case SloObjective::Kind::kCounterRatio:
      return "counter_ratio";
  }
  return "?";
}

}  // namespace

TraceContext MintTraceContext(std::string_view package, std::string_view home,
                              std::string_view guest, SimTime at,
                              uint64_t salt) {
  std::string buf;
  buf.reserve(package.size() + home.size() + guest.size() + 19);
  buf.append(package).push_back('\0');
  buf.append(home).push_back('\0');
  buf.append(guest).push_back('\0');
  char scalar[16];
  std::memcpy(scalar, &at, 8);
  std::memcpy(scalar + 8, &salt, 8);
  buf.append(scalar, 16);
  const Hash128 h = FluxHash128(
      ByteSpan(reinterpret_cast<const uint8_t*>(buf.data()), buf.size()),
      kContextSeed);
  TraceContext ctx{h.hi, h.lo};
  if (!ctx.valid()) {
    ctx.lo = 1;  // the zero context means "none"
  }
  return ctx;
}

// ----- TimeSeriesSampler -----

TimeSeriesSampler::TimeSeriesSampler(const SimClock* clock)
    : TimeSeriesSampler(clock, Options()) {}

TimeSeriesSampler::TimeSeriesSampler(const SimClock* clock, Options options)
    : clock_(clock), options_(options) {
  if (options_.cadence <= 0) {
    options_.cadence = Millis(250);
  }
  if (options_.capacity == 0) {
    options_.capacity = 1;
  }
}

void TimeSeriesSampler::Attach(const Tracer* tracer) {
  if (tracer != nullptr) {
    tracers_.push_back(tracer);
  }
}

void TimeSeriesSampler::SetContextProvider(
    std::function<std::vector<TraceContext>()> provider) {
  context_provider_ = std::move(provider);
}

void TimeSeriesSampler::Poll() {
  const SimTime now = clock_->now();
  if (have_sample_ && now < last_sample_ + options_.cadence) {
    return;
  }
  SampleNow();
}

size_t TimeSeriesSampler::CounterIndex(std::string_view name) {
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) {
    return it->second;
  }
  const size_t idx = counter_names_.size();
  counter_names_.emplace_back(name);
  counter_index_.emplace(counter_names_.back(), idx);
  counter_scratch_.push_back(0);
  return idx;
}

size_t TimeSeriesSampler::HistogramIndex(std::string_view name) {
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) {
    return it->second;
  }
  const size_t idx = histogram_names_.size();
  histogram_names_.emplace_back(name);
  histogram_index_.emplace(histogram_names_.back(), idx);
  histogram_scratch_.emplace_back();
  return idx;
}

uint64_t TimeSeriesSampler::CounterAt(const TelemetrySample& sample,
                                      std::string_view name) const {
  auto it = counter_index_.find(name);
  if (it == counter_index_.end() || it->second >= sample.counters.size()) {
    return 0;
  }
  return sample.counters[it->second];
}

const TraceHistogram::Snapshot* TimeSeriesSampler::HistogramAt(
    const TelemetrySample& sample, std::string_view name) const {
  auto it = histogram_index_.find(name);
  if (it == histogram_index_.end() ||
      it->second >= sample.histograms.size()) {
    return nullptr;
  }
  return &sample.histograms[it->second];
}

void TimeSeriesSampler::SampleNow() {
  // The hot path the ≤1% overhead budget governs: transparent-comparator
  // index lookups (no per-lookup allocation) accumulating into reused
  // scratch buffers; the only steady-state allocations are the sample's
  // own two flat vector copies.
  const auto host_begin = std::chrono::steady_clock::now();
  std::fill(counter_scratch_.begin(), counter_scratch_.end(), 0);
  std::fill(histogram_scratch_.begin(), histogram_scratch_.end(),
            TraceHistogram::Snapshot{});
  for (const Tracer* tracer : tracers_) {
    tracer->VisitCounters([&](std::string_view name, uint64_t value) {
      counter_scratch_[CounterIndex(name)] += value;
    });
    tracer->VisitHistograms(
        [&](std::string_view name, const TraceHistogram& histogram) {
          histogram_scratch_[HistogramIndex(name)].Merge(histogram.Take());
        });
  }
  TelemetrySample sample;
  sample.seq = ++taken_;
  sample.at = clock_->now();
  sample.counters = counter_scratch_;
  sample.histograms = histogram_scratch_;
  if (context_provider_) {
    sample.contexts = context_provider_();
  }
  samples_.push_back(std::move(sample));
  while (samples_.size() > options_.capacity) {
    samples_.pop_front();
    ++dropped_;
  }
  last_sample_ = clock_->now();
  have_sample_ = true;
  host_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_begin)
          .count();
}

std::vector<TelemetryWindowRates> DeriveWindowRates(
    const TimeSeriesSampler& sampler) {
  std::vector<TelemetryWindowRates> out;
  const auto& samples = sampler.samples();
  for (size_t i = 1; i < samples.size(); ++i) {
    const TelemetrySample& prev = samples[i - 1];
    const TelemetrySample& cur = samples[i];
    TelemetryWindowRates r;
    r.begin = prev.at;
    r.end = cur.at;
    const double secs = ToSecondsF(static_cast<SimDuration>(cur.at - prev.at));
    if (secs <= 0) {
      out.push_back(r);
      continue;
    }
    // Fleet runs count completions in fleet.migrations_completed; the
    // full-fidelity single path restores exactly once per migration
    // (cria.restores). The two never coexist, so summing is safe.
    const uint64_t migrations =
        CounterDelta(sampler, prev, cur,
                     trace_names::kFleetMigrationsCompleted) +
        CounterDelta(sampler, prev, cur, trace_names::kCriaRestores);
    const uint64_t wire =
        CounterDelta(sampler, prev, cur, trace_names::kNetWireBytes) +
        CounterDelta(sampler, prev, cur, trace_names::kFleetWireBytes);
    const uint64_t rollbacks =
        CounterDelta(sampler, prev, cur, trace_names::kMigrationRollbacks);
    const uint64_t retransmit = CounterDelta(
        sampler, prev, cur, trace_names::kMigrationResumeRetransmitBytes);
    const uint64_t lost = CounterDelta(
        sampler, prev, cur, trace_names::kMigrationResumeLostBytes);
    r.migrations_per_s = static_cast<double>(migrations) / secs;
    r.wire_mb_per_s = static_cast<double>(wire) / 1e6 / secs;
    r.rollback_rate = static_cast<double>(rollbacks) /
                      static_cast<double>(std::max<uint64_t>(migrations, 1));
    r.retransmit_ratio =
        lost == 0 ? 0.0
                  : static_cast<double>(retransmit) / static_cast<double>(lost);
    out.push_back(r);
  }
  return out;
}

// ----- SloMonitor -----

std::vector<SloObjective> DefaultSloCatalog() {
  return {
      // Sub-second p99 perceived time (the pre-copy claim, bench_precopy).
      {"migration.perceived_p99_us", SloObjective::Kind::kHistogramP99,
       std::string(trace_names::kHistMigrationPerceived), "", 1e6},
      // No rollbacks in steady state: rollbacks per completed migration.
      {"migration.rollback_rate", SloObjective::Kind::kCounterRatio,
       std::string(trace_names::kMigrationRollbacks),
       std::string(trace_names::kCriaRestores), 0.0},
      // Resumed transfers re-send at most 1.2x the bytes an outage
      // destroyed (the chunk-granular resume claim, bench_hostile).
      {"migration.retransmit_ratio", SloObjective::Kind::kCounterRatio,
       std::string(trace_names::kMigrationResumeRetransmitBytes),
       std::string(trace_names::kMigrationResumeLostBytes), 1.2},
  };
}

SloMonitor::SloMonitor(std::vector<SloObjective> objectives,
                       FlightRecorder* recorder)
    : objectives_(std::move(objectives)), recorder_(recorder) {}

void SloMonitor::Evaluate(const TimeSeriesSampler& sampler) {
  const auto& samples = sampler.samples();
  for (size_t i = 1; i < samples.size(); ++i) {
    const TelemetrySample& prev = samples[i - 1];
    const TelemetrySample& cur = samples[i];
    if (cur.seq <= next_window_) {
      continue;  // already evaluated (seq is the absolute sample index)
    }
    next_window_ = cur.seq;
    ++windows_evaluated_;
    const double secs =
        ToSecondsF(static_cast<SimDuration>(cur.at - prev.at));
    for (const SloObjective& obj : objectives_) {
      double value = 0;
      bool have_value = false;
      switch (obj.kind) {
        case SloObjective::Kind::kHistogramP99: {
          const TraceHistogram::Snapshot delta =
              HistogramDelta(sampler, prev, cur, obj.metric);
          if (delta.count > 0) {
            value = delta.Percentile(99);
            have_value = true;
          }
          break;
        }
        case SloObjective::Kind::kWindowRate: {
          if (secs > 0) {
            value = static_cast<double>(
                        CounterDelta(sampler, prev, cur, obj.metric)) /
                    secs;
            have_value = true;
          }
          break;
        }
        case SloObjective::Kind::kCounterRatio: {
          const uint64_t den =
              CounterDelta(sampler, prev, cur, obj.denominator);
          if (den > 0) {
            value = static_cast<double>(
                        CounterDelta(sampler, prev, cur, obj.metric)) /
                    static_cast<double>(den);
            have_value = true;
          }
          break;
        }
      }
      if (!have_value) {
        continue;
      }
      auto worst = worst_.find(obj.name);
      if (worst == worst_.end() || value > worst->second) {
        worst_[obj.name] = value;
      }
      if (value <= obj.bound) {
        continue;
      }
      SloBreach breach;
      breach.objective = obj.name;
      breach.window = cur.seq;
      breach.begin = prev.at;
      breach.end = cur.at;
      breach.value = value;
      breach.bound = obj.bound;
      // Cite the smallest in-flight context: canonical regardless of the
      // provider's internal table order.
      if (!cur.contexts.empty()) {
        breach.ctx = *std::min_element(cur.contexts.begin(),
                                       cur.contexts.end());
      } else if (!prev.contexts.empty()) {
        breach.ctx = *std::min_element(prev.contexts.begin(),
                                       prev.contexts.end());
      }
      if (recorder_ != nullptr) {
        // Stamp the breach event with the breaching window's context so it
        // links back to the causal trace like any migration event.
        const TraceContext saved = recorder_->context();
        recorder_->set_context(breach.ctx);
        FLUX_EVENT_DETAIL(recorder_, flight_events::kSubSlo,
                          flight_events::kSloBreach, EventSeverity::kWarning,
                          breach.ctx.hi, breach.ctx.lo, breach.objective);
        recorder_->set_context(saved);
      }
      breaches_.push_back(std::move(breach));
    }
  }
}

std::string SloMonitor::HealthReportText() const {
  std::string out = "fleet SLO health\n";
  char buf[256];
  for (const SloObjective& obj : objectives_) {
    size_t count = 0;
    for (const SloBreach& b : breaches_) {
      if (b.objective == obj.name) {
        ++count;
      }
    }
    auto worst = worst_.find(obj.name);
    const double seen = worst == worst_.end() ? 0.0 : worst->second;
    std::snprintf(buf, sizeof(buf),
                  "  %-32s %s  bound %.6g  worst %.6g  breaches %zu  [%s]\n",
                  obj.name.c_str(), count == 0 ? "OK    " : "BREACH",
                  obj.bound, seen, count,
                  std::string(SloKindName(obj.kind)).c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  windows evaluated: %" PRIu64 "\n",
                windows_evaluated_);
  out += buf;
  return out;
}

// ----- causal-stitch records -----

StitchRecord BuildStitchRecord(
    std::string_view label, const TraceContext& ctx, const Tracer* tracer,
    const std::vector<FlightEventView>& home_events,
    const std::vector<FlightEventView>& guest_events) {
  StitchRecord rec;
  rec.label = std::string(label);
  rec.ctx = ctx;
  std::set<std::string> span_set;
  if (tracer != nullptr) {
    for (const TraceSpanRecord& s : tracer->Spans()) {
      if (s.ctx.valid()) {
        ++rec.spans_stamped;
        span_set.insert(s.ctx.ToHex());
      }
    }
  }
  rec.span_ctxs.assign(span_set.begin(), span_set.end());
  auto collect = [](const std::vector<FlightEventView>& events,
                    size_t& stamped) {
    std::set<std::string> out;
    for (const FlightEventView& e : events) {
      if (e.ctx.valid()) {
        ++stamped;
        out.insert(e.ctx.ToHex());
      }
    }
    return std::vector<std::string>(out.begin(), out.end());
  };
  rec.home_ctxs = collect(home_events, rec.home_events_stamped);
  rec.guest_ctxs = collect(guest_events, rec.guest_events_stamped);
  return rec;
}

// ----- exporters -----

std::string TimeSeriesJson(const TimeSeriesExport& exp) {
  std::string out = "{\n  \"schema\": \"flux.timeseries.v1\",\n";
  SimDuration cadence = Millis(250);
  if (!exp.series.empty() && exp.series.front().sampler != nullptr) {
    cadence = exp.series.front().sampler->cadence();
  }
  out += "  \"cadence_us\": " + std::to_string(cadence) + ",\n";
  out += "  \"series\": [";
  bool first_series = true;
  double sampler_host_s = 0;
  for (const TimeSeriesExport::Series& series : exp.series) {
    if (series.sampler == nullptr) {
      continue;
    }
    const TimeSeriesSampler& sampler = *series.sampler;
    sampler_host_s += sampler.host_seconds();
    out += first_series ? "\n" : ",\n";
    first_series = false;
    out += "    {\"label\": " + JsonStr(series.label);
    out += ", \"taken\": " + std::to_string(sampler.taken());
    out += ", \"dropped\": " + std::to_string(sampler.dropped());
    out += ",\n     \"samples\": [";
    bool first_sample = true;
    for (const TelemetrySample& s : sampler.samples()) {
      out += first_sample ? "\n" : ",\n";
      first_sample = false;
      out += "      {\"seq\": " + std::to_string(s.seq);
      out += ", \"t_us\": " + std::to_string(s.at);
      out += ", \"inflight\": " + std::to_string(s.contexts.size());
      out += ", \"contexts\": [";
      // Samples store contexts in the provider's (deterministic) table
      // order; sort here so the exported JSON is canonical. Export-time
      // sorting keeps the per-sample cost out of the ≤1% overhead budget.
      std::vector<TraceContext> ctxs(s.contexts);
      std::sort(ctxs.begin(), ctxs.end());
      for (size_t i = 0; i < ctxs.size(); ++i) {
        if (i != 0) out += ", ";
        out += JsonStr(ctxs[i].ToHex());
      }
      out += "], \"counters\": {";
      const auto& names = sampler.counter_names();
      for (size_t i = 0; i < s.counters.size(); ++i) {
        if (i != 0) out += ", ";
        out += JsonStr(names[i]) + ": " + std::to_string(s.counters[i]);
      }
      out += "}}";
    }
    out += "\n     ],\n     \"rates\": [";
    bool first_rate = true;
    for (const TelemetryWindowRates& r : DeriveWindowRates(sampler)) {
      out += first_rate ? "\n" : ",\n";
      first_rate = false;
      out += "      {\"begin_us\": " + std::to_string(r.begin);
      out += ", \"end_us\": " + std::to_string(r.end);
      out += ", \"migrations_per_s\": " + Num(r.migrations_per_s);
      out += ", \"wire_mb_per_s\": " + Num(r.wire_mb_per_s);
      out += ", \"rollback_rate\": " + Num(r.rollback_rate);
      out += ", \"retransmit_ratio\": " + Num(r.retransmit_ratio);
      out += "}";
    }
    out += "\n     ]}";
  }
  out += "\n  ]";

  if (exp.monitor != nullptr) {
    const SloMonitor& monitor = *exp.monitor;
    out += ",\n  \"slo\": {\"windows_evaluated\": " +
           std::to_string(monitor.windows_evaluated());
    out += ",\n    \"objectives\": [";
    bool first_obj = true;
    for (const SloObjective& obj : monitor.objectives()) {
      out += first_obj ? "\n" : ",\n";
      first_obj = false;
      out += "      {\"name\": " + JsonStr(obj.name);
      out += ", \"kind\": " + JsonStr(SloKindName(obj.kind));
      out += ", \"metric\": " + JsonStr(obj.metric);
      out += ", \"denominator\": " + JsonStr(obj.denominator);
      out += ", \"bound\": " + Num(obj.bound) + "}";
    }
    out += "\n    ],\n    \"breaches\": [";
    bool first_breach = true;
    for (const SloBreach& b : monitor.breaches()) {
      out += first_breach ? "\n" : ",\n";
      first_breach = false;
      out += "      {\"objective\": " + JsonStr(b.objective);
      out += ", \"window\": " + std::to_string(b.window);
      out += ", \"begin_us\": " + std::to_string(b.begin);
      out += ", \"end_us\": " + std::to_string(b.end);
      out += ", \"value\": " + Num(b.value);
      out += ", \"bound\": " + Num(b.bound);
      out += ", \"ctx\": " + JsonStr(b.ctx.valid() ? b.ctx.ToHex() : "");
      out += "}";
    }
    out += "\n    ]\n  }";
  }

  if (exp.recorder != nullptr) {
    out += ",\n  \"breach_events\": [";
    bool first_event = true;
    for (const FlightEventView& e : exp.recorder->Snapshot()) {
      if (e.subsystem != flight_events::kSubSlo) {
        continue;
      }
      out += first_event ? "\n" : ",\n";
      first_event = false;
      out += "    {\"t_us\": " + std::to_string(e.time);
      out += ", \"name\": " + JsonStr(e.name);
      out += ", \"ctx\": " + JsonStr(e.ctx.valid() ? e.ctx.ToHex() : "");
      out += ", \"detail\": " + JsonStr(e.detail) + "}";
    }
    out += "\n  ]";
  }

  if (!exp.stitch.empty()) {
    out += ",\n  \"stitch\": [";
    bool first_rec = true;
    auto hex_list = [](const std::vector<std::string>& v) {
      std::string s = "[";
      for (size_t i = 0; i < v.size(); ++i) {
        if (i != 0) s += ", ";
        s += JsonStr(v[i]);
      }
      s += "]";
      return s;
    };
    for (const StitchRecord& rec : exp.stitch) {
      out += first_rec ? "\n" : ",\n";
      first_rec = false;
      out += "    {\"label\": " + JsonStr(rec.label);
      out += ", \"ctx\": " + JsonStr(rec.ctx.valid() ? rec.ctx.ToHex() : "");
      out += ", \"spans_stamped\": " + std::to_string(rec.spans_stamped);
      out += ", \"span_ctxs\": " + hex_list(rec.span_ctxs);
      out += ", \"home_events_stamped\": " +
             std::to_string(rec.home_events_stamped);
      out += ", \"home_ctxs\": " + hex_list(rec.home_ctxs);
      out += ", \"guest_events_stamped\": " +
             std::to_string(rec.guest_events_stamped);
      out += ", \"guest_ctxs\": " + hex_list(rec.guest_ctxs) + "}";
    }
    out += "\n  ]";
  }

  const double pct = exp.run_host_seconds > 0
                         ? 100.0 * sampler_host_s / exp.run_host_seconds
                         : 0.0;
  out += ",\n  \"overhead\": {\"sampler_host_s\": " + Num(sampler_host_s);
  out += ", \"run_host_s\": " + Num(exp.run_host_seconds);
  out += ", \"pct\": " + Num(pct) + "}\n}\n";
  return out;
}

std::string OpenMetricsText(const TimeSeriesExport& exp) {
  std::string out;
  std::set<std::string> typed;
  auto metric_name = [](std::string_view counter) {
    std::string name = "flux_";
    for (char c : counter) {
      name += (c == '.' || c == '-') ? '_' : c;
    }
    name += "_total";
    return name;
  };
  for (const TimeSeriesExport::Series& series : exp.series) {
    if (series.sampler == nullptr) {
      continue;
    }
    for (const TelemetrySample& s : series.sampler->samples()) {
      const auto& counter_names = series.sampler->counter_names();
      for (size_t i = 0; i < s.counters.size(); ++i) {
        const uint64_t value = s.counters[i];
        const std::string name = metric_name(counter_names[i]);
        if (typed.insert(name).second) {
          out += "# TYPE " + name + " counter\n";
        }
        out += name + "{series=\"";
        AppendEscaped(out, series.label);
        out += "\"} " + std::to_string(value) + " " +
               Num(ToSecondsF(static_cast<SimDuration>(s.at))) + "\n";
      }
    }
  }
  out += "# EOF\n";
  return out;
}

bool WriteTimeSeries(const TimeSeriesExport& exp, const char* path) {
  const std::string json = TimeSeriesJson(exp);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write time series to %s\n", path);
    return false;
  }
  out << json;
  const std::string om_path = std::string(path) + ".om";
  std::ofstream om(om_path);
  if (!om) {
    std::fprintf(stderr, "cannot write OpenMetrics text to %s\n",
                 om_path.c_str());
    return false;
  }
  om << OpenMetricsText(exp);
  std::fprintf(stderr, "time series written to %s (+.om, %zu bytes)\n", path,
               json.size());
  return true;
}

// ----- end-of-run stats merge (--stats-out) -----

std::string TracerStatsJson(const std::vector<const Tracer*>& tracers) {
  // std::map keeps the JSON key order deterministic across runs.
  std::map<std::string, TraceHistogram::Snapshot> histograms;
  std::map<std::string, uint64_t> counters;
  size_t traced_cells = 0;
  for (const Tracer* tracer : tracers) {
    if (tracer == nullptr) {
      continue;
    }
    ++traced_cells;
    for (const auto& [name, snapshot] : tracer->Histograms()) {
      histograms[name].Merge(snapshot);
    }
    for (const auto& [name, value] : tracer->Counters()) {
      counters[name] += value;
    }
  }
  std::ostringstream out;
  out << "{\n  \"cells\": " << traced_cells << ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  // Registered-but-zero counters, named explicitly: a name listed here was
  // registered and observed nothing; a name absent from "counters" entirely
  // was never registered — its subsystem never ran (OBSERVABILITY.md).
  out << "\n  },\n  \"zero_counters\": [";
  first = true;
  for (const auto& [name, value] : counters) {
    if (value != 0) {
      continue;
    }
    out << (first ? "" : ", ") << "\"" << name << "\"";
    first = false;
  }
  out << "],\n  \"histograms\": {";
  first = true;
  for (const auto& [name, snap] : histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {"
        << "\"count\": " << snap.count << ", \"max\": " << snap.max
        << ", \"p50\": " << snap.Percentile(50)
        << ", \"p90\": " << snap.Percentile(90)
        << ", \"p99\": " << snap.Percentile(99) << ", \"sum\": " << snap.sum
        << ", \"buckets\": [";
    // The raw 64-entry power-of-two bucket array (bucket 0 holds only the
    // value 0; bucket b holds [2^(b-1), 2^b)) so downstream tools can
    // re-bin and plot full distributions, not just the three percentiles.
    for (int b = 0; b < TraceHistogram::kBuckets; ++b) {
      out << (b == 0 ? "" : ", ") << snap.buckets[b];
    }
    out << "]}";
    first = false;
  }
  out << "\n  }\n}\n";
  return std::move(out).str();
}

bool WriteTracerStats(const std::vector<const Tracer*>& tracers,
                      const char* path) {
  const std::string json = TracerStatsJson(tracers);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write stats to %s\n", path);
    return false;
  }
  out << json;
  std::fprintf(stderr, "stats written to %s (%zu bytes)\n", path,
               json.size());
  return true;
}

}  // namespace flux
