#include "src/flux/record_engine.h"

#include <algorithm>

namespace flux {

void RecordEngine::TrackApp(Pid pid, std::string package) {
  apps_[pid] = TrackedApp{std::move(package), false, CallLog{}};
}

void RecordEngine::UntrackApp(Pid pid) { apps_.erase(pid); }

void RecordEngine::PauseRecording(Pid pid) {
  auto it = apps_.find(pid);
  if (it != apps_.end()) {
    it->second.paused = true;
  }
}

void RecordEngine::ResumeRecording(Pid pid) {
  auto it = apps_.find(pid);
  if (it != apps_.end()) {
    it->second.paused = false;
  }
}

CallLog* RecordEngine::LogFor(Pid pid) {
  auto it = apps_.find(pid);
  return it == apps_.end() ? nullptr : &it->second.log;
}

const CallLog* RecordEngine::LogFor(Pid pid) const {
  auto it = apps_.find(pid);
  return it == apps_.end() ? nullptr : &it->second.log;
}

Result<CallLog> RecordEngine::TakeLog(Pid pid) {
  auto it = apps_.find(pid);
  if (it == apps_.end()) {
    return NotFound("pid not tracked by record engine");
  }
  CallLog log = std::move(it->second.log);
  it->second.log = CallLog{};
  return log;
}

void RecordEngine::InstallLog(Pid pid, CallLog log) {
  auto it = apps_.find(pid);
  if (it != apps_.end()) {
    it->second.log = std::move(log);
  }
}

bool RecordEngine::SignatureMatches(const CallRecord& entry,
                                    const TransactionInfo& info,
                                    const std::vector<std::string>& sig_args) {
  for (const auto& arg_name : sig_args) {
    const ParcelValue* old_value = entry.args.FindNamed(arg_name);
    const ParcelValue* new_value = info.args.FindNamed(arg_name);
    if (old_value == nullptr || new_value == nullptr ||
        !(*old_value == *new_value)) {
      return false;
    }
  }
  return true;
}

void RecordEngine::OnTransaction(const TransactionInfo& info) {
  auto it = apps_.find(info.client_pid);
  if (it == apps_.end() || it->second.paused || !info.ok) {
    return;
  }
  TrackedApp& app = it->second;
  ++stats_.transactions_seen;

  auto append = [&] {
    CallRecord record;
    record.time = info.time;
    record.service = info.service_name;
    record.interface = info.interface;
    record.method = info.method;
    record.node_id = info.node_id;
    record.args = info.args;
    record.reply = info.reply;
    record.oneway = info.oneway;
    app.log.Append(std::move(record));
    ++stats_.calls_recorded;
    if (clock_ != nullptr) {
      clock_->Advance(record_cost_);
    }
  };

  if (full_record_) {
    append();
    return;
  }

  const RecordRule* rule =
      rules_ != nullptr ? rules_->FindRule(info.interface, info.method)
                        : nullptr;
  if (rule == nullptr || !rule->record) {
    return;  // undecorated: never enters the log
  }

  bool suppress = false;
  for (const auto& clause : rule->drops) {
    // Resolve "this" and collect the other method names.
    std::vector<std::string> methods;
    bool drops_this = false;
    bool has_other = false;
    for (const auto& name : clause.methods) {
      if (name == "this") {
        drops_this = true;
        methods.push_back(info.method);
      } else {
        has_other = true;
        methods.push_back(name);
      }
    }
    // All signatures: @if conjunction plus each @elif alternative. No
    // signature at all means an unconditional drop.
    std::vector<std::vector<std::string>> signatures;
    if (!clause.if_args.empty()) {
      signatures.push_back(clause.if_args);
    }
    for (const auto& alt : clause.elif_args) {
      signatures.push_back(alt);
    }

    int dropped_other = 0;
    const int removed = app.log.RemoveIf([&](const CallRecord& entry) {
      if (entry.interface != info.interface ||
          entry.node_id != info.node_id) {
        return false;
      }
      if (std::find(methods.begin(), methods.end(), entry.method) ==
          methods.end()) {
        return false;
      }
      bool matches = signatures.empty();
      for (const auto& sig : signatures) {
        if (SignatureMatches(entry, info, sig)) {
          matches = true;
          break;
        }
      }
      if (matches && entry.method != info.method) {
        ++dropped_other;
      }
      return matches;
    });
    stats_.calls_dropped_stale += static_cast<uint64_t>(removed);

    // A negating call ("this" listed with the calls it cancels) is itself
    // stale once it found a victim: replaying it would cancel nothing.
    if (drops_this && has_other && dropped_other > 0) {
      suppress = true;
    }
  }

  if (suppress) {
    ++stats_.calls_suppressed;
    return;
  }
  append();
}

void RecordEngine::Arm(BinderDriver& driver) { driver.AddObserver(this); }

void RecordEngine::Disarm(BinderDriver& driver) { driver.RemoveObserver(this); }

}  // namespace flux
