#include "src/flux/record_engine.h"

#include <algorithm>

#include "src/base/interner.h"

namespace flux {

namespace {

// Looks up `name` in `parcel`, trying the precompiled slot hint before the
// linear FindNamed scan. Apps marshal arguments in declaration order, so the
// hint hits unless the caller reordered or renamed arguments.
const ParcelValue* FindArg(const Parcel& parcel, int slot_hint,
                           const std::string& name) {
  if (slot_hint >= 0 && static_cast<size_t>(slot_hint) < parcel.size() &&
      parcel.name_at(static_cast<size_t>(slot_hint)) == name) {
    return &parcel.at(static_cast<size_t>(slot_hint));
  }
  return parcel.FindNamed(name);
}

}  // namespace

void RecordEngine::set_tracer(Tracer* tracer) {
#if FLUX_TRACE_ENABLED
  trace_seen_ =
      tracer ? tracer->counter(trace_names::kRecordTransactionsSeen) : nullptr;
  trace_recorded_ =
      tracer ? tracer->counter(trace_names::kRecordCallsRecorded) : nullptr;
  trace_pruned_ =
      tracer ? tracer->counter(trace_names::kRecordCallsPruned) : nullptr;
  trace_suppressed_ =
      tracer ? tracer->counter(trace_names::kRecordCallsSuppressed) : nullptr;
  hist_txn_cost_ =
      tracer ? tracer->histogram(trace_names::kHistRecordTxn) : nullptr;
#else
  (void)tracer;
#endif
}

void RecordEngine::TrackApp(Pid pid, std::string package) {
  auto [it, inserted] = apps_.try_emplace(pid);
  it->second.package = std::move(package);
  it->second.paused = false;
  (void)inserted;  // re-tracking keeps the existing log
  FLUX_EVENT_DETAIL(flight_recorder_, flight_events::kSubRecord,
                    flight_events::kRecordTracked, EventSeverity::kInfo,
                    static_cast<uint64_t>(pid), 0, it->second.package);
}

void RecordEngine::UntrackApp(Pid pid) {
  apps_.erase(pid);
  FLUX_EVENT(flight_recorder_, flight_events::kSubRecord,
             flight_events::kRecordUntracked, EventSeverity::kInfo,
             static_cast<uint64_t>(pid), 0);
}

void RecordEngine::PauseRecording(Pid pid) {
  auto it = apps_.find(pid);
  if (it != apps_.end()) {
    it->second.paused = true;
    FLUX_EVENT(flight_recorder_, flight_events::kSubRecord,
               flight_events::kRecordPaused, EventSeverity::kInfo,
               static_cast<uint64_t>(pid), 0);
  }
}

void RecordEngine::ResumeRecording(Pid pid) {
  auto it = apps_.find(pid);
  if (it != apps_.end()) {
    it->second.paused = false;
    FLUX_EVENT(flight_recorder_, flight_events::kSubRecord,
               flight_events::kRecordResumed, EventSeverity::kInfo,
               static_cast<uint64_t>(pid), 0);
  }
}

CallLog* RecordEngine::LogFor(Pid pid) {
  auto it = apps_.find(pid);
  return it == apps_.end() ? nullptr : &it->second.log;
}

const CallLog* RecordEngine::LogFor(Pid pid) const {
  auto it = apps_.find(pid);
  return it == apps_.end() ? nullptr : &it->second.log;
}

Result<CallLog> RecordEngine::TakeLog(Pid pid) {
  auto it = apps_.find(pid);
  if (it == apps_.end()) {
    return NotFound("pid not tracked by record engine");
  }
  CallLog log = std::move(it->second.log);
  it->second.log = CallLog{};
  return log;
}

void RecordEngine::InstallLog(Pid pid, CallLog log) {
  auto it = apps_.find(pid);
  if (it != apps_.end()) {
    it->second.log = std::move(log);
  }
}

void RecordEngine::OnTransaction(const TransactionInfo& info) {
  auto it = apps_.find(info.client_pid);
  if (it == apps_.end() || it->second.paused || !info.ok) {
    return;
  }
  TrackedApp& app = it->second;
  ++stats_.transactions_seen;
  FLUX_TRACE_COUNTER_ADD(trace_seen_, 1);

  // The driver interns these; hand-built infos (tests) fall back here.
  const uint32_t interface_id = info.interface_id != 0
                                    ? info.interface_id
                                    : Interner::Global().Intern(info.interface);
  const uint32_t method_id = info.method_id != 0
                                 ? info.method_id
                                 : Interner::Global().Intern(info.method);

  auto append = [&] {
    CallRecord record;
    record.time = info.time;
    record.service = info.service_name;
    record.interface = info.interface;
    record.method = info.method;
    record.interface_id = interface_id;
    record.method_id = method_id;
    record.node_id = info.node_id;
    record.args = info.args;    // copy-on-write share, no payload copy
    record.reply = info.reply;
    record.oneway = info.oneway;
    app.log.Append(std::move(record));
    ++stats_.calls_recorded;
    FLUX_TRACE_COUNTER_ADD(trace_recorded_, 1);
    FLUX_TRACE_HIST_RECORD(hist_txn_cost_,
                           static_cast<uint64_t>(record_cost_));
    if (clock_ != nullptr) {
      clock_->Advance(record_cost_);
    }
  };

  if (full_record_) {
    append();
    return;
  }

  const CompiledRule* rule =
      rules_ != nullptr ? rules_->FindCompiled(interface_id, method_id)
                        : nullptr;
  if (rule == nullptr) {
    return;  // undecorated (or not recorded): never enters the log
  }

  bool suppress = false;
  for (const CompiledDropClause& clause : rule->drops) {
    // Resolve every signature argument on the new call once; a missing
    // argument rules its signature out for every candidate entry.
    sig_values_.clear();
    for (const CompiledDropClause::Arg& arg : clause.args) {
      sig_values_.push_back(FindArg(info.args, arg.caller_slot, arg.name));
    }

    const size_t n_args = clause.args.size();
    int dropped_other = 0;
    const int removed = app.log.PruneBucket(
        interface_id, info.node_id, [&](const CallRecord& entry) {
          const int victim = clause.VictimIndex(entry.method_id);
          if (victim < 0) {
            return false;
          }
          bool matches = clause.sig_ranges.empty();  // no signature at all
          for (const auto& [begin, end] : clause.sig_ranges) {
            if (matches) {
              break;
            }
            matches = true;
            for (uint16_t k = begin; k < end; ++k) {
              const ParcelValue* new_value = sig_values_[k];
              const ParcelValue* old_value =
                  new_value == nullptr
                      ? nullptr
                      : FindArg(entry.args,
                                clause.victim_arg_slots[victim * n_args + k],
                                clause.args[k].name);
              if (old_value == nullptr || !(*old_value == *new_value)) {
                matches = false;
                break;
              }
            }
          }
          if (matches && entry.method_id != method_id) {
            ++dropped_other;
          }
          return matches;
        });
    stats_.calls_dropped_stale += static_cast<uint64_t>(removed);
    FLUX_TRACE_COUNTER_ADD(trace_pruned_, static_cast<uint64_t>(removed));

    // A negating call ("this" listed with the calls it cancels) is itself
    // stale once it found a victim: replaying it would cancel nothing.
    if (clause.drops_this && clause.has_other && dropped_other > 0) {
      suppress = true;
    }
  }

  if (suppress) {
    ++stats_.calls_suppressed;
    FLUX_TRACE_COUNTER_ADD(trace_suppressed_, 1);
    return;
  }
  append();
}

void RecordEngine::Arm(BinderDriver& driver) { driver.AddObserver(this); }

void RecordEngine::Disarm(BinderDriver& driver) { driver.RemoveObserver(this); }

}  // namespace flux
