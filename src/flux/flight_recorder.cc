#include "src/flux/flight_recorder.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>

namespace flux {

namespace {

// Runtime default for the always-on recorder: on unless the environment
// says otherwise (the CI identity check runs with FLUX_FLIGHT_RECORDER=0).
bool DefaultEnabled() {
  static const bool enabled = [] {
    const char* value = std::getenv("FLUX_FLIGHT_RECORDER");
    return value == nullptr || std::string_view(value) != "0";
  }();
  return enabled;
}

// Registry of recorders mirroring kError+ log lines. The sink fires on the
// cold error path only; a mutex is fine.
std::mutex g_capture_mu;
std::vector<FlightRecorder*>& CaptureRegistry() {
  static std::vector<FlightRecorder*> recorders;
  return recorders;
}

void LogCaptureSink(LogLevel level, std::string_view component,
                    std::string_view message) {
  if (level < LogLevel::kError) {
    return;
  }
  const uint32_t sub =
      Interner::Global().Intern(flight_events::kSubLog);
  const uint32_t name = Interner::Global().Intern(flight_events::kLogError);
  const uint32_t component_id = Interner::Global().Intern(component);
  std::string combined;
  combined.reserve(component.size() + 2 + message.size());
  combined.append(component).append(": ").append(message);
  std::lock_guard<std::mutex> lock(g_capture_mu);
  for (FlightRecorder* recorder : CaptureRegistry()) {
    if (recorder->enabled()) {
      recorder->EmitDetail(sub, name, EventSeverity::kError, component_id, 0,
                           combined);
    }
  }
}

void RegisterForLogCapture(FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(g_capture_mu);
  auto& registry = CaptureRegistry();
  registry.push_back(recorder);
  if (registry.size() == 1) {
    SetLogSink(&LogCaptureSink);
  }
}

void UnregisterFromLogCapture(FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(g_capture_mu);
  auto& registry = CaptureRegistry();
  registry.erase(std::remove(registry.begin(), registry.end(), recorder),
                 registry.end());
  if (registry.empty()) {
    SetLogSink(nullptr);
  }
}

}  // namespace

std::string_view EventSeverityName(EventSeverity severity) {
  switch (severity) {
    case EventSeverity::kDebug:
      return "debug";
    case EventSeverity::kInfo:
      return "info";
    case EventSeverity::kWarning:
      return "warning";
    case EventSeverity::kError:
      return "error";
  }
  return "?";
}

FlightRecorder::FlightRecorder(const SimClock* clock, size_t capacity,
                               bool capture_logs)
    : clock_(clock), ring_(capacity), enabled_(DefaultEnabled()) {
  if (capture_logs) {
    capturing_logs_ = true;
    RegisterForLogCapture(this);
  }
}

FlightRecorder::~FlightRecorder() {
  if (capturing_logs_) {
    UnregisterFromLogCapture(this);
  }
}

void FlightRecorder::EmitDetail(uint32_t subsystem_id, uint32_t name_id,
                                EventSeverity severity, uint64_t arg0,
                                uint64_t arg1, std::string_view detail) {
  FlightEvent event;
  event.time = clock_ != nullptr ? clock_->now() : 0;
  event.subsystem = subsystem_id;
  event.name = name_id;
  event.severity = severity;
  event.arg0 = arg0;
  event.arg1 = arg1;
  event.ctx_hi = context_.hi;
  event.ctx_lo = context_.lo;
  const size_t n = std::min(detail.size(), sizeof(event.detail));
  std::memcpy(event.detail, detail.data(), n);
  event.detail_len = static_cast<uint8_t>(n);
  ring_.Append(event);
}

std::vector<FlightEventView> FlightRecorder::Snapshot() const {
  std::vector<FlightEventView> out;
  const Interner& interner = Interner::Global();
  for (const FlightEvent& event : ring_.Snapshot()) {
    FlightEventView view;
    view.time = event.time;
    view.subsystem = std::string(interner.Lookup(event.subsystem));
    view.name = std::string(interner.Lookup(event.name));
    view.severity = event.severity;
    view.arg0 = event.arg0;
    view.arg1 = event.arg1;
    view.ctx = TraceContext{event.ctx_hi, event.ctx_lo};
    view.detail.assign(event.detail, event.detail_len);
    out.push_back(std::move(view));
  }
  return out;
}

}  // namespace flux
