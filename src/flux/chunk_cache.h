// Per-device content-addressed chunk store for delta transfer.
//
// Every migration ships the CRIA image as fixed-size chunks; on the
// phone<->tablet ping-pong pattern Flux is built for, most chunks are
// byte-identical to ones the peer already saw in an earlier hop. Each
// device keeps a ChunkCache of raw chunk content keyed by FluxHash128:
// the home side queries the guest's cache through a hash manifest before
// streaming and replaces hits with 16-byte `ref` chunks; the guest side
// resolves refs locally and re-inserts everything it restores, so the
// cache warms in both directions.
//
// Entries are verified against their key on every query: a poisoned entry
// (bit rot, a torn write) is indistinguishable from a miss, so the home
// side ships the full chunk instead of letting a bad cache corrupt a
// restore. Eviction is LRU by bytes against a per-device budget.
#ifndef FLUX_SRC_FLUX_CHUNK_CACHE_H_
#define FLUX_SRC_FLUX_CHUNK_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/hash.h"
#include "src/flux/flight_recorder.h"
#include "src/flux/trace.h"

namespace flux {

// Raw bytes covered by one cache entry. Pairing-time seeding and the
// migration engine must agree on this granularity or seeded entries can
// never match an image chunk (MigrationConfig::pipeline_chunk_bytes
// defaults to the same value).
inline constexpr uint64_t kChunkCacheChunkBytes = 256 * 1024;

class ChunkCache {
 public:
  struct Stats {
    uint64_t insertions = 0;       // new entries stored
    uint64_t refreshes = 0;        // inserts that found the entry present
    uint64_t hits = 0;             // verified lookups that matched
    uint64_t misses = 0;           // lookups with no entry
    uint64_t verify_failures = 0;  // entries dropped on content mismatch
    uint64_t evictions = 0;        // entries dropped for the byte budget
  };

  explicit ChunkCache(uint64_t budget_bytes) : budget_bytes_(budget_bytes) {}

  // Stores (a copy of) `content` under `hash`, bumping it most-recent and
  // evicting least-recently-used entries past the byte budget. An entry
  // larger than the whole budget is not stored. The caller vouches that
  // `hash` is the content's FluxHash128; Insert does not re-hash.
  void Insert(const Hash128& hash, ByteSpan content);

  // True if the entry exists AND its content still hashes to `hash`.
  // Bumps the entry most-recent on success; drops it on verify failure.
  // This is the manifest-time query: answering "have" for a poisoned entry
  // would make the home side ship an unusable ref.
  bool HasValid(const Hash128& hash);

  // Fetches a verified copy of the entry into `out`; same verification and
  // LRU semantics as HasValid. Returns false on miss or verify failure.
  bool Fetch(const Hash128& hash, Bytes& out);

  // Drops one entry; returns whether it existed.
  bool Remove(const Hash128& hash);

  void Clear();

  // Shrinking the budget evicts immediately.
  void set_budget_bytes(uint64_t budget_bytes);
  uint64_t budget_bytes() const { return budget_bytes_; }
  uint64_t bytes() const { return bytes_; }
  size_t entries() const { return index_.size(); }
  const Stats& stats() const { return stats_; }

  // Mirrors the Stats increments into cache.* trace counters (null
  // detaches). Counter pointers are cached here so the hot lookups pay one
  // pointer test, not a registry probe.
  void set_tracer(Tracer* tracer);

  // Emits a cache.verify_failure flight-recorder event whenever a poisoned
  // entry is dropped (content no longer matches its key).
  void set_flight_recorder(FlightRecorder* recorder) {
    flight_recorder_ = recorder;
  }

  // Fault injection for tests: flips one bit of the stored content so the
  // entry no longer matches its key. Returns whether the entry existed.
  bool PoisonForTest(const Hash128& hash);

  // Every key currently cached, most recently used first (for tests that
  // poison or drop the whole store).
  std::vector<Hash128> Keys() const;

 private:
  struct Entry {
    Hash128 hash;
    Bytes content;
  };
  using Lru = std::list<Entry>;

  void EvictToBudget();

  uint64_t budget_bytes_;
  uint64_t bytes_ = 0;
  Lru lru_;  // front = most recently used
  std::unordered_map<Hash128, Lru::iterator, Hash128Hasher> index_;
  Stats stats_;
  TraceCounter* trace_hits_ = nullptr;
  TraceCounter* trace_misses_ = nullptr;
  TraceCounter* trace_insertions_ = nullptr;
  TraceCounter* trace_refreshes_ = nullptr;
  TraceCounter* trace_evictions_ = nullptr;
  TraceCounter* trace_verify_failures_ = nullptr;
  FlightRecorder* flight_recorder_ = nullptr;
};

}  // namespace flux

#endif  // FLUX_SRC_FLUX_CHUNK_CACHE_H_
