#include "src/flux/pipeline.h"

#include <algorithm>

namespace flux {

PipelinePlan SchedulePipeline(const std::vector<PipelineStageModel>& stages) {
  PipelinePlan plan;
  plan.stages.reserve(stages.size());
  plan.finish.resize(stages.size());
  const size_t chunks = stages.empty() ? 0 : stages[0].chunk_cost.size();

  // prev_finish[s]: when stage s becomes free again (finished chunk i-1, or
  // its initial offset before chunk 0).
  std::vector<SimDuration> prev_finish;
  prev_finish.reserve(stages.size());
  for (const PipelineStageModel& stage : stages) {
    PipelineStageTiming timing;
    timing.name = stage.name;
    timing.finish = stage.initial_offset;
    plan.stages.push_back(std::move(timing));
    prev_finish.push_back(stage.initial_offset);
  }
  for (auto& finish : plan.finish) {
    finish.reserve(chunks);
  }

  for (size_t i = 0; i < chunks; ++i) {
    SimDuration upstream = 0;  // when chunk i left the previous stage
    for (size_t s = 0; s < stages.size(); ++s) {
      const SimDuration cost = stages[s].chunk_cost[i];
      const SimDuration start = std::max(prev_finish[s], upstream);
      const SimDuration end = start + cost;
      prev_finish[s] = end;
      upstream = end;
      plan.stages[s].busy += cost;
      plan.stages[s].finish = end;
      if (i == 0) {
        plan.stages[s].first_finish = end;
      }
      plan.finish[s].push_back(end);
    }
  }

  for (const SimDuration finish : prev_finish) {
    plan.makespan = std::max(plan.makespan, finish);
  }
  return plan;
}

}  // namespace flux
