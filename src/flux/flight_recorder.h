// Always-on flight recorder (failure forensics, OBSERVABILITY.md).
//
// The opt-in Tracer answers "where did the time go" for a migration you
// chose to watch; the flight recorder answers "what happened" for the one
// you didn't — the 3am rollback. Every Device owns one: a fixed-size
// EventRing of small structured events, stamped on the simulated clock,
// with interned subsystem/name ids, a severity, two scalar payloads, and an
// optional short detail string. Subsystems emit through the FLUX_EVENT_*
// macros below, which cost one null/enabled check plus a relaxed ring
// append when on and compile out entirely under -DFLUX_TRACE=OFF — so the
// recorder can stay on for every migration without perturbing the figure
// benches (events never touch the simulated clock).
//
// When a forensic report is cut (src/flux/forensics.h), both devices' rings
// are snapshotted and the interned ids resolve back to strings.
//
// Log capture: a recorder constructed with `capture_logs` registers with
// the logging layer's sink hook; kError+ log lines from anywhere in the
// process are mirrored into every capturing ring (the process-global logger
// stands in for per-device loggers in this single-process simulation), so
// free-form logs and structured events share one timeline.
//
// This library depends only on flux_base, like the tracer, so net, binder,
// and cria (all below flux_core) can link it.
#ifndef FLUX_SRC_FLUX_FLIGHT_RECORDER_H_
#define FLUX_SRC_FLUX_FLIGHT_RECORDER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/event_ring.h"
#include "src/base/interner.h"
#include "src/base/logging.h"
#include "src/base/sim_clock.h"
#include "src/flux/trace.h"

#ifndef FLUX_TRACE_ENABLED
#define FLUX_TRACE_ENABLED 1
#endif

namespace flux {

// ----- event taxonomy -----
//
// Every structured event the runtime emits is named here (and only here);
// scripts/check_forensics.py fails CI if a constant is missing from
// OBSERVABILITY.md's taxonomy table. Names are `subsystem.what`, matching
// the counter convention.
namespace flight_events {

// Subsystems (the first column of every event).
inline constexpr std::string_view kSubMigration = "migration";
inline constexpr std::string_view kSubPairing = "pairing";
inline constexpr std::string_view kSubRecord = "record";
inline constexpr std::string_view kSubReplay = "replay";
inline constexpr std::string_view kSubCria = "cria";
inline constexpr std::string_view kSubCache = "cache";
inline constexpr std::string_view kSubNet = "net";
inline constexpr std::string_view kSubBinder = "binder";
inline constexpr std::string_view kSubLog = "log";

// MigrationManager lifecycle.
inline constexpr std::string_view kMigrationStart = "migration.start";
inline constexpr std::string_view kMigrationRefused = "migration.refused";
inline constexpr std::string_view kMigrationPrepared = "migration.prepared";
inline constexpr std::string_view kMigrationCheckpointed =
    "migration.checkpointed";
inline constexpr std::string_view kMigrationPrecopyRound =
    "migration.precopy_round";
inline constexpr std::string_view kMigrationTransferred =
    "migration.transferred";
inline constexpr std::string_view kMigrationRestored = "migration.restored";
inline constexpr std::string_view kMigrationComplete = "migration.complete";
inline constexpr std::string_view kMigrationRollback = "migration.rollback";
inline constexpr std::string_view kMigrationRollbackFailed =
    "migration.rollback_failed";
inline constexpr std::string_view kMigrationResume = "migration.resume";
// Pairing protocol (§3.1).
inline constexpr std::string_view kPairingDevices = "pairing.devices";
inline constexpr std::string_view kPairingApp = "pairing.app";
inline constexpr std::string_view kPairingVerifyApk = "pairing.verify_apk";
// Selective Record bookkeeping.
inline constexpr std::string_view kRecordTracked = "record.tracked";
inline constexpr std::string_view kRecordUntracked = "record.untracked";
inline constexpr std::string_view kRecordPaused = "record.paused";
inline constexpr std::string_view kRecordResumed = "record.resumed";
// Adaptive Replay.
inline constexpr std::string_view kReplayStart = "replay.start";
inline constexpr std::string_view kReplayDone = "replay.done";
inline constexpr std::string_view kReplayCallFailed = "replay.call_failed";
// CRIA.
inline constexpr std::string_view kCriaCheckpoint = "cria.checkpoint";
inline constexpr std::string_view kCriaRestore = "cria.restore";
// Chunk cache.
inline constexpr std::string_view kCacheVerifyFailure =
    "cache.verify_failure";
// Radio model.
inline constexpr std::string_view kNetOutage = "net.outage";
inline constexpr std::string_view kNetTransfer = "net.transfer";
// Wire framing (src/net/frame.h): a frame arrived with a CRC32C mismatch
// (a0 = frame wire bytes, a1 = the chunk's base seq).
inline constexpr std::string_view kNetFrameCrcError = "net.frame.crc_error";
// Binder driver (BinderCracker-style per-transaction failure context).
inline constexpr std::string_view kBinderTransactionFailed =
    "binder.transaction_failed";
// Routed log lines (the name is the interned component).
inline constexpr std::string_view kLogError = "log.error";
// SLO health monitor (src/flux/telemetry.h): a declared objective exceeded
// its bound over one sampling window. a0/a1 carry the hi/lo words of a
// TraceContext active in the breaching window (zero when none was), the
// detail names the objective, and the event's own ctx field is the same
// context — so a breach links straight back to the causal trace.
inline constexpr std::string_view kSubSlo = "slo";
inline constexpr std::string_view kSloBreach = "slo.breach";

}  // namespace flight_events

enum class EventSeverity : uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

std::string_view EventSeverityName(EventSeverity severity);

// One ring slot: 8-byte aligned PODs plus a short inline detail buffer so a
// slot copy is a memcpy and the ring never allocates.
struct FlightEvent {
  SimTime time = 0;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  // Causal trace context of the migration in flight when the event was
  // emitted (zero outside any migration); stamped from the recorder's
  // ambient context, set by MigrationManager for the span of one Migrate().
  uint64_t ctx_hi = 0;
  uint64_t ctx_lo = 0;
  uint32_t subsystem = 0;  // interned (Interner::Global())
  uint32_t name = 0;       // interned
  EventSeverity severity = EventSeverity::kInfo;
  uint8_t detail_len = 0;
  char detail[46] = {};  // truncated; long context belongs in logs
};

// A snapshot row with the interned ids resolved.
struct FlightEventView {
  SimTime time = 0;
  std::string subsystem;
  std::string name;
  EventSeverity severity = EventSeverity::kInfo;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  TraceContext ctx;
  std::string detail;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 512;

  // Events stamp `clock->now()`. With `capture_logs`, kError+ log lines are
  // mirrored into this ring for as long as the recorder lives.
  explicit FlightRecorder(const SimClock* clock,
                          size_t capacity = kDefaultCapacity,
                          bool capture_logs = false);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Runtime kill switch, honored by the FLUX_EVENT_* macros. Defaults from
  // the FLUX_FLIGHT_RECORDER environment variable ("0" disables) so the
  // three-config identity check in CI can exercise the off path.
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  const SimClock* clock() const { return clock_; }

  // Ambient causal context: every event emitted while set carries it.
  // MigrationManager sets it on both devices' recorders for the duration of
  // one Migrate() call and clears it on every exit path.
  void set_context(const TraceContext& ctx) { context_ = ctx; }
  void clear_context() { context_ = TraceContext{}; }
  TraceContext context() const { return context_; }

  void Emit(uint32_t subsystem_id, uint32_t name_id, EventSeverity severity,
            uint64_t arg0, uint64_t arg1) {
    FlightEvent event;
    event.time = clock_ != nullptr ? clock_->now() : 0;
    event.subsystem = subsystem_id;
    event.name = name_id;
    event.severity = severity;
    event.arg0 = arg0;
    event.arg1 = arg1;
    event.ctx_hi = context_.hi;
    event.ctx_lo = context_.lo;
    ring_.Append(event);
  }

  void EmitDetail(uint32_t subsystem_id, uint32_t name_id,
                  EventSeverity severity, uint64_t arg0, uint64_t arg1,
                  std::string_view detail);

  // Oldest-to-newest view of the retained window, ids resolved.
  std::vector<FlightEventView> Snapshot() const;

  size_t capacity() const { return ring_.capacity(); }
  uint64_t events_emitted() const { return ring_.appended(); }
  uint64_t events_dropped() const { return ring_.dropped(); }
  void Clear() { ring_.Clear(); }

 private:
  const SimClock* clock_;
  EventRing<FlightEvent> ring_;
  TraceContext context_;
  bool enabled_;
  bool capturing_logs_ = false;
};

}  // namespace flux

// ----- instrumentation macros -----
//
// FLUX_EVENT(recorder*, subsystem_sv, name_sv, severity, arg0, arg1) and
// FLUX_EVENT_DETAIL(..., detail_sv). Subsystem/name are interned once per
// call site (function-local statics), so the steady-state cost is a
// null+enabled check and a relaxed ring append. Under FLUX_TRACE_ENABLED=0
// both collapse to a discarded dead branch, mirroring FLUX_TRACE_*.
#if FLUX_TRACE_ENABLED

#define FLUX_EVENT(recorder, subsystem, name, severity, a0, a1)         \
  do {                                                                  \
    ::flux::FlightRecorder* flux_event_r = (recorder);                  \
    if (flux_event_r != nullptr && flux_event_r->enabled()) {           \
      static const uint32_t flux_event_sub =                           \
          ::flux::Interner::Global().Intern(subsystem);                \
      static const uint32_t flux_event_name =                          \
          ::flux::Interner::Global().Intern(name);                     \
      flux_event_r->Emit(flux_event_sub, flux_event_name, (severity),   \
                         static_cast<uint64_t>(a0),                     \
                         static_cast<uint64_t>(a1));                    \
    }                                                                   \
  } while (0)

#define FLUX_EVENT_DETAIL(recorder, subsystem, name, severity, a0, a1,  \
                          detail)                                       \
  do {                                                                  \
    ::flux::FlightRecorder* flux_event_r = (recorder);                  \
    if (flux_event_r != nullptr && flux_event_r->enabled()) {           \
      static const uint32_t flux_event_sub =                           \
          ::flux::Interner::Global().Intern(subsystem);                \
      static const uint32_t flux_event_name =                          \
          ::flux::Interner::Global().Intern(name);                     \
      flux_event_r->EmitDetail(flux_event_sub, flux_event_name,         \
                               (severity), static_cast<uint64_t>(a0),   \
                               static_cast<uint64_t>(a1), (detail));    \
    }                                                                   \
  } while (0)

#else  // !FLUX_TRACE_ENABLED

#define FLUX_EVENT_DISCARD_(...)      \
  do {                                \
    if (false) {                      \
      (void)sizeof((__VA_ARGS__, 0)); \
    }                                 \
  } while (0)
#define FLUX_EVENT(recorder, subsystem, name, severity, a0, a1) \
  FLUX_EVENT_DISCARD_((recorder), (subsystem), (name), (severity), (a0), (a1))
#define FLUX_EVENT_DETAIL(recorder, subsystem, name, severity, a0, a1, \
                          detail)                                      \
  FLUX_EVENT_DISCARD_((recorder), (subsystem), (name), (severity), (a0), \
                      (a1), (detail))

#endif  // FLUX_TRACE_ENABLED

#endif  // FLUX_SRC_FLUX_FLIGHT_RECORDER_H_
