#include "src/flux/migration.h"

#include <algorithm>

#include "src/base/compress.h"
#include "src/base/logging.h"
#include "src/base/strings.h"

namespace flux {

namespace {

constexpr uint32_t kPayloadMagic = 0x464C5558;  // "FLUX"

// CPU time to push `bytes` through a `mbps` pipeline on `device`.
SimDuration CpuCost(const Device& device, uint64_t bytes, double mbps) {
  const double factor =
      device.profile().cpu_factor > 0 ? device.profile().cpu_factor : 1.0;
  const double seconds =
      static_cast<double>(bytes) / (mbps * 1024.0 * 1024.0) / factor;
  return FromSecondsF(seconds);
}

}  // namespace

RunningApp RunningApp::FromInstance(AppInstance& app) {
  RunningApp running;
  running.device = &app.device();
  running.pid = app.pid();
  running.all_pids = app.all_pids();
  running.uid = app.uid();
  running.package = app.spec().package;
  running.display_name = app.spec().display_name;
  running.thread = app.shared_thread();
  return running;
}

SimDuration MigrationReport::Total() const {
  return prepare.duration() + checkpoint.duration() + transfer.duration() +
         restore.duration() + reintegrate.duration() + background_tail;
}

SimDuration MigrationReport::UserPerceived() const {
  // Preparation and checkpoint overlap with the user picking the migration
  // target from the menu (§4).
  return transfer.duration() + restore.duration() + reintegrate.duration();
}

SimDuration MigrationReport::PerceivedExcludingTransfer() const {
  return restore.duration() + reintegrate.duration();
}

MigrationManager::MigrationManager(FluxAgent& home, FluxAgent& guest,
                                   MigrationConfig config)
    : home_(home), guest_(guest), config_(config) {}

Status MigrationManager::Prepare(const RunningApp& app,
                                 MigrationReport& report) {
  Device& device = *app.device;
  SimClock& clock = device.clock();
  ScopedTimer timer(clock, report.prepare);

  // 1. Background the app: resumed activities pause, then the task idler
  //    stops them and the WindowManager frees their surfaces.
  FLUX_RETURN_IF_ERROR(device.activity_manager().MoveAppToBackground(app.pid));
  if (config_.wait_for_task_idler) {
    clock.Advance(device.activity_manager().idle_stop_delay());
  }
  device.activity_manager().RunTaskIdler();

  // 2. Trim memory at the highest severity: flush renderer caches, destroy
  //    hardware resources and GL contexts (§3.3).
  FLUX_RETURN_IF_ERROR(device.activity_manager().RequestTrimMemory(
      app.pid, kTrimMemoryComplete));

  // 3. Flux's eglUnload: remove the vendor GL library from every process of
  //    the app (helpers rarely hold one, but the invariant is per-process).
  for (const Pid pid : app.all_pids.empty() ? std::vector<Pid>{app.pid}
                                            : app.all_pids) {
    FLUX_RETURN_IF_ERROR(device.egl().EglUnload(pid));
  }

  device.context().SpendCpu(config_.prepare_fixed);
  return OkStatus();
}

Result<Bytes> MigrationManager::BuildPayload(const RunningApp& app,
                                             MigrationReport& report) {
  Device& device = *app.device;
  ScopedTimer timer(device.clock(), report.checkpoint);

  // Recording stops with the app frozen; the log travels with the image.
  home_.recorder().PauseRecording(app.pid);
  const CallLog* log = home_.recorder().LogFor(app.pid);
  if (log == nullptr) {
    return FailedPrecondition("app is not managed by the home Flux agent");
  }

  const std::vector<Pid> pids =
      app.all_pids.empty() ? std::vector<Pid>{app.pid} : app.all_pids;
  FLUX_ASSIGN_OR_RETURN(CriaCheckpointResult cria,
                        Cria::CheckpointTree(device, pids, *app.thread));
  report.cria = cria.stats;
  report.image_raw_bytes = cria.image.size();
  device.context().SpendCpu(
      CpuCost(device, cria.image.size(), config_.serialize_mbps));

  ArchiveWriter payload;
  payload.PutU32(kPayloadMagic);
  payload.PutString(app.package);

  // Hardware snapshot for Adaptive Replay's diffing.
  ArchiveWriter hw;
  HardwareSnapshot::FromContext(device.context()).Serialize(hw);
  payload.PutSection(hw);

  // The pruned call log.
  ArchiveWriter log_section;
  log->Serialize(log_section);
  report.log_bytes = log_section.size();
  payload.PutSection(log_section);

  // The CRIA image, compressed for transfer.
  if (config_.compress_image) {
    Bytes compressed = LzCompress(
        ByteSpan(cria.image.data(), cria.image.size()));
    device.context().SpendCpu(
        CpuCost(device, cria.image.size(), config_.compress_mbps));
    payload.PutBool(true);
    payload.PutBytes(ByteSpan(compressed.data(), compressed.size()));
    report.image_compressed_bytes = compressed.size();
  } else {
    payload.PutBool(false);
    payload.PutBytes(ByteSpan(cria.image.data(), cria.image.size()));
    report.image_compressed_bytes = cria.image.size();
  }
  return payload.TakeData();
}

Status MigrationManager::Transfer(const RunningApp& app, const AppSpec& spec,
                                  uint64_t payload_bytes,
                                  MigrationReport& report) {
  Device& home_device = *app.device;
  Device& guest_device = guest_.device();
  ScopedTimer timer(home_device.clock(), report.transfer);

  if (!home_device.wifi().up()) {
    return Unavailable("network unreachable during migration transfer");
  }
  // Verify (and if needed refresh) the paired APK (§3.1).
  FLUX_ASSIGN_OR_RETURN(uint64_t apk_wire,
                        VerifyPairedApk(home_, guest_, spec));

  // Delta-sync the app's data directories into the pairing root.
  const std::string pair_root = FluxAgent::PairRoot(home_device.name());
  SyncOptions options;
  options.compress = true;
  uint64_t data_wire = 0;
  const std::string data_dir = "/data/data/" + app.package;
  if (home_device.filesystem().Exists(data_dir)) {
    FLUX_ASSIGN_OR_RETURN(
        SyncStats sync,
        SyncTree(home_device.filesystem(), data_dir, guest_device.filesystem(),
                 pair_root + data_dir, options));
    data_wire += sync.WireBytes();
  }
  const std::string sd_dir = "/sdcard/Android/data/" + app.package;
  if (home_device.filesystem().Exists(sd_dir)) {
    FLUX_ASSIGN_OR_RETURN(
        SyncStats sync,
        SyncTree(home_device.filesystem(), sd_dir, guest_device.filesystem(),
                 pair_root + sd_dir, options));
    data_wire += sync.WireBytes();
  }
  report.data_sync_bytes = apk_wire + data_wire;
  report.total_wire_bytes = report.data_sync_bytes + payload_bytes;

  const EffectiveLink link = home_device.wifi().LinkBetween(
      home_device.profile().radio, guest_device.profile().radio);
  home_device.wifi().Transfer(home_device.clock(), report.total_wire_bytes,
                              link);
  return OkStatus();
}

Result<CriaRestoredApp> MigrationManager::RestoreOnGuest(
    ByteSpan payload, MigrationReport& report, CallLog& log_out,
    HardwareSnapshot& hw_out) {
  Device& guest_device = guest_.device();
  ScopedTimer timer(guest_device.clock(), report.restore);

  ArchiveReader reader(payload);
  uint32_t magic = 0;
  FLUX_RETURN_IF_ERROR(reader.GetU32(magic));
  if (magic != kPayloadMagic) {
    return Corrupt("not a Flux migration payload");
  }
  std::string package;
  FLUX_RETURN_IF_ERROR(reader.GetString(package));

  ArchiveReader hw_section({});
  FLUX_RETURN_IF_ERROR(reader.GetSection(hw_section));
  FLUX_ASSIGN_OR_RETURN(hw_out, HardwareSnapshot::Deserialize(hw_section));

  ArchiveReader log_section({});
  FLUX_RETURN_IF_ERROR(reader.GetSection(log_section));
  FLUX_ASSIGN_OR_RETURN(log_out, CallLog::Deserialize(log_section));

  bool compressed = false;
  Bytes image_bytes;
  FLUX_RETURN_IF_ERROR(reader.GetBool(compressed));
  FLUX_RETURN_IF_ERROR(reader.GetBytes(image_bytes));
  if (compressed) {
    FLUX_ASSIGN_OR_RETURN(
        Bytes raw, LzDecompress(ByteSpan(image_bytes.data(),
                                         image_bytes.size())));
    guest_device.context().SpendCpu(
        CpuCost(guest_device, raw.size(), config_.decompress_mbps));
    image_bytes = std::move(raw);
  }
  guest_device.context().SpendCpu(
      CpuCost(guest_device, image_bytes.size(), config_.restore_mbps));

  CriaRestoreOptions options;
  options.jail_root = FluxAgent::PairRoot(hw_out.device_name);
  return Cria::Restore(guest_device,
                       ByteSpan(image_bytes.data(), image_bytes.size()),
                       options);
}

Status MigrationManager::Reintegrate(CriaRestoredApp& restored,
                                     const CallLog& log,
                                     const HardwareSnapshot& home_hw,
                                     MigrationReport& report) {
  Device& guest_device = guest_.device();
  ScopedTimer timer(guest_device.clock(), report.reintegrate);

  // The guest agent manages the app from now on; replay's own calls must
  // not be re-recorded (§3.1).
  guest_.Manage(restored.pid, restored.package);
  guest_.recorder().PauseRecording(restored.pid);

  FLUX_ASSIGN_OR_RETURN(report.replay,
                        guest_.replayer().Replay(log, restored, home_hw));

  // The log keeps living on the guest so the app can migrate again.
  guest_.recorder().InstallLog(restored.pid, log);

  // Connectivity: the app sees a loss and a new connection (§3.1).
  Intent lost;
  lost.action = "android.net.conn.CONNECTIVITY_CHANGE";
  lost.extras["connected"] = "false";
  guest_device.activity_manager().BroadcastIntent(lost);
  Intent regained;
  regained.action = "android.net.conn.CONNECTIVITY_CHANGE";
  regained.extras["connected"] = "true";
  regained.extras["network"] =
      guest_device.context().connectivity.network_name;
  guest_device.activity_manager().BroadcastIntent(regained);

  guest_.recorder().ResumeRecording(restored.pid);

  // Foreground: surfaces are recreated at the guest's resolution and the
  // first draw reinitializes graphics via conditional initialization.
  FLUX_RETURN_IF_ERROR(
      guest_device.activity_manager().BringAppToForeground(restored.pid));
  for (const std::string& token : restored.activity_tokens) {
    FLUX_RETURN_IF_ERROR(restored.thread->DrawFrame(token));
  }
  guest_device.context().SpendCpu(config_.reintegrate_fixed);
  return OkStatus();
}

Result<MigrationReport> MigrationManager::Migrate(const RunningApp& app,
                                                  const AppSpec& spec) {
  MigrationReport report;
  report.app = app.display_name.empty() ? app.package : app.display_name;
  report.home_device = home_.device().name();
  report.guest_device = guest_.device().name();

  if (app.device != &home_.device()) {
    return InvalidArgument("app is not running on the home agent's device");
  }
  if (!home_.IsPairedWith(guest_.device().name())) {
    return FailedPrecondition("devices are not paired");
  }
  // API-level compatibility (§3.1).
  const PackageInfo* info =
      home_.device().package_manager().Find(app.package);
  if (info != nullptr &&
      info->min_api_level > guest_.device().context().api_level) {
    report.refusal_reason = StrFormat(
        "app requires API level %d but guest runs %d", info->min_api_level,
        guest_.device().context().api_level);
    return report;
  }

  // Up-front refusals (§3.4): these leave the app running untouched.
  if (!config_.enable_multiprocess &&
      home_.device().kernel().ProcessesOfUid(app.uid).size() > 1) {
    report.refusal_reason = "multi-process apps are not supported";
    return report;
  }
  if (home_.device().egl().HasPreservedContext(app.pid)) {
    report.refusal_reason =
        "app requests its EGL context persist in the background "
        "(setPreserveEGLContextOnPause)";
    return report;
  }
  CriaCheckOptions check;
  check.allow_multiprocess = config_.enable_multiprocess;
  if (Status migratable =
          Cria::CheckMigratable(home_.device(), app.pid, check);
      !migratable.ok()) {
    report.refusal_reason = std::string(migratable.message());
    return report;
  }

  // From here on the app is frozen at home; any failure before the guest
  // copy is live must roll the home copy back to a usable state.
  auto rollback = [&](const Status& cause) -> Status {
    home_.recorder().ResumeRecording(app.pid);
    Status fg = app.device->activity_manager().BringAppToForeground(app.pid);
    if (!fg.ok()) {
      FLUX_LOG(kError, "migration")
          << "rollback foreground failed: " << fg.ToString();
    }
    FLUX_LOG(kWarning, "migration")
        << report.app << ": migration aborted (" << cause.ToString()
        << "); app resumed on " << report.home_device;
    return cause;
  };

  FLUX_RETURN_IF_ERROR(Prepare(app, report));
  auto payload_result = BuildPayload(app, report);
  if (!payload_result.ok()) {
    return rollback(payload_result.status());
  }
  Bytes payload = payload_result.TakeValue();

  // Post-copy (§4's proposed optimization): only the hot working set of the
  // image is pre-paged before restore; the rest streams while the app is
  // already usable on the guest.
  uint64_t foreground_bytes = payload.size();
  if (config_.post_copy) {
    const double fraction =
        std::clamp(config_.post_copy_priority_fraction, 0.05, 1.0);
    foreground_bytes = static_cast<uint64_t>(
        static_cast<double>(payload.size()) * fraction);
    report.deferred_bytes = payload.size() - foreground_bytes;
  }
  if (Status transferred = Transfer(app, spec, foreground_bytes, report);
      !transferred.ok()) {
    return rollback(transferred);
  }

  CallLog log;
  HardwareSnapshot home_hw;
  auto restored_result = RestoreOnGuest(
      ByteSpan(payload.data(), payload.size()), report, log, home_hw);
  if (!restored_result.ok()) {
    return rollback(restored_result.status());
  }
  CriaRestoredApp restored = restored_result.TakeValue();
  FLUX_RETURN_IF_ERROR(Reintegrate(restored, log, home_hw, report));

  if (report.deferred_bytes > 0) {
    // The deferred bytes streamed while restore + reintegration ran; only
    // the tail that outlasts those stages delays completion, and none of it
    // delays the user (demand paging serves faults from the stream).
    Device& home_device = *app.device;
    const EffectiveLink link = home_device.wifi().LinkBetween(
        home_device.profile().radio, guest_.device().profile().radio);
    report.background_transfer =
        home_device.wifi().TransferTime(report.deferred_bytes, link);
    const SimDuration overlap =
        report.restore.duration() + report.reintegrate.duration();
    report.background_tail =
        std::max<SimDuration>(0, report.background_transfer - overlap);
    home_device.clock().Advance(report.background_tail);
    report.total_wire_bytes += report.deferred_bytes;
  }

  // The home copy is gone; its processes and tracking state are torn down.
  home_.Unmanage(app.pid);
  for (const Pid pid :
       app.all_pids.empty() ? std::vector<Pid>{app.pid} : app.all_pids) {
    FLUX_RETURN_IF_ERROR(home_.device().KillAppProcess(pid));
  }

  report.success = true;
  report.migrated.device = &guest_.device();
  report.migrated.pid = restored.pid;
  report.migrated.all_pids = restored.all_pids;
  report.migrated.uid = restored.uid;
  report.migrated.package = restored.package;
  report.migrated.display_name = report.app;
  report.migrated.thread = restored.thread;
  FLUX_LOG(kInfo, "migration")
      << report.app << ": " << report.home_device << " -> "
      << report.guest_device << " in "
      << StrFormat("%.2f s", ToSecondsF(report.Total())) << " ("
      << report.total_wire_bytes / 1024 << " KB transferred)";
  return report;
}

}  // namespace flux
