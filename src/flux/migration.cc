#include "src/flux/migration.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "src/base/compress.h"
#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/base/synthetic_content.h"
#include "src/base/thread_pool.h"
#include "src/flux/telemetry.h"

namespace flux {

namespace {

constexpr uint32_t kPayloadMagic = 0x464C5558;  // "FLUX"

// Modeled wire bytes of the dedup manifest handshake (PROTOCOL.md §7): the
// home side sends a 32-byte header — 16 bytes of framing fields plus the
// 16-byte trace-context field added in manifest v2 (§7.1) — plus one
// 16-byte hash per chunk; the guest answers with a header plus a
// one-bit-per-chunk availability bitmap. The context travels whether or
// not tracing is compiled in: it is protocol data, and charging it
// unconditionally is what keeps the three telemetry configs byte-identical.
uint64_t ManifestWireBytes(uint64_t chunk_count) {
  return 32 + 16 * chunk_count + 8 + (chunk_count + 7) / 8;
}

// CPU time to push `bytes` through a `mbps` pipeline on `device`.
SimDuration CpuCost(const Device& device, uint64_t bytes, double mbps) {
  const double factor =
      device.profile().cpu_factor > 0 ? device.profile().cpu_factor : 1.0;
  const double seconds =
      static_cast<double>(bytes) / (mbps * 1024.0 * 1024.0) / factor;
  return FromSecondsF(seconds);
}

// The write load of a prepared-but-still-running app during the pre-copy
// window (DESIGN.md §10): deterministic page-granular heap writes at the
// workload's dirty rate, with hot-region locality — most writes land in
// the head of each anonymous segment, the rest scatter. Page content comes
// from the synthetic generator at the heap's own compressibility, so
// dirtied pages compress like the rest of the image.
class PrecopyWriteLoad {
 public:
  PrecopyWriteLoad(Device& device, const std::vector<Pid>& pids,
                   const AppSpec& spec)
      : device_(device),
        spec_(spec),
        rng_(FluxHash64(
            ByteSpan(reinterpret_cast<const uint8_t*>(spec.package.data()),
                     spec.package.size()),
            /*seed=*/0x70726563)) {
    for (const Pid pid : pids) {
      if (SimProcess* process = device.kernel().FindProcess(pid)) {
        for (const MemorySegment& segment :
             process->address_space().segments()) {
          if (segment.kind == SegmentKind::kAnonPrivate &&
              segment.content.size() >= kPage) {
            targets_.push_back({pid, segment.start, segment.content.size()});
            total_bytes_ += segment.content.size();
          }
        }
      }
    }
  }

  // Dirties pages for `elapsed` of app runtime; fractional pages carry
  // over so the rate holds across arbitrary tick slices.
  void Apply(SimDuration elapsed) {
    if (targets_.empty() || spec_.workload.dirty_bytes_per_s == 0 ||
        elapsed <= 0) {
      return;
    }
    budget_ += static_cast<double>(spec_.workload.dirty_bytes_per_s) *
               ToSecondsF(elapsed);
    while (budget_ >= static_cast<double>(kPage)) {
      budget_ -= static_cast<double>(WriteBurst());
    }
  }

 private:
  static constexpr uint64_t kPage = 4096;
  // Cold (non-hot-set) writes land as contiguous runs — allocation sweeps
  // and buffer fills, not uniformly scattered single pages. Uniform
  // scatter would touch nearly every 256 KiB pipeline chunk and no write
  // load could ever converge, which is not how real heaps behave.
  static constexpr uint64_t kColdBurstPages = 16;

  struct Target {
    Pid pid = kInvalidPid;
    uint64_t start = 0;
    uint64_t size = 0;
  };

  // Writes one hot page (9 in 10) or one cold contiguous burst; returns
  // the bytes dirtied.
  uint64_t WriteBurst() {
    // Segment weighted by size.
    uint64_t point = rng_.NextBelow(total_bytes_);
    const Target* target = &targets_.back();
    for (const Target& t : targets_) {
      if (point < t.size) {
        target = &t;
        break;
      }
      point -= t.size;
    }
    const uint64_t pages = target->size / kPage;
    if (pages == 0) {
      return kPage;
    }
    SimProcess* process = device_.kernel().FindProcess(target->pid);
    if (process == nullptr) {
      return kPage;
    }
    const double hot =
        std::clamp(spec_.workload.dirty_hot_fraction, 0.001, 1.0);
    const uint64_t hot_pages = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(pages) * hot));
    uint64_t page = 0;
    uint64_t run = 1;
    if (rng_.NextDouble() < 0.9) {
      page = rng_.NextBelow(hot_pages);
    } else {
      page = rng_.NextBelow(pages);
      run = std::min(kColdBurstPages, pages - page);
    }
    const Bytes content = GenerateContent(rng_.NextU64(), run * kPage,
                                          spec_.heap_compressibility);
    (void)process->address_space().Write(
        target->start, page * kPage,
        ByteSpan(content.data(), content.size()));
    return run * kPage;
  }

  Device& device_;
  const AppSpec& spec_;
  Rng rng_;
  std::vector<Target> targets_;
  uint64_t total_bytes_ = 0;
  double budget_ = 0;
};

}  // namespace

RunningApp RunningApp::FromInstance(AppInstance& app) {
  RunningApp running;
  running.device = &app.device();
  running.pid = app.pid();
  running.all_pids = app.all_pids();
  running.uid = app.uid();
  running.package = app.spec().package;
  running.display_name = app.spec().display_name;
  running.thread = app.shared_thread();
  return running;
}

SimDuration MigrationReport::Total() const {
  return prepare.duration() + checkpoint.duration() + transfer.duration() +
         restore.duration() + reintegrate.duration() + background_tail;
}

SimDuration MigrationReport::UserPerceived() const {
  // Preparation and checkpoint overlap with the user picking the migration
  // target from the menu (§4).
  return transfer.duration() + restore.duration() + reintegrate.duration();
}

SimDuration MigrationReport::PerceivedExcludingTransfer() const {
  return restore.duration() + reintegrate.duration();
}

MigrationManager::MigrationManager(FluxAgent& home, FluxAgent& guest,
                                   MigrationConfig config)
    : home_(home), guest_(guest), config_(config) {
  if (config_.precopy) {
    // Pre-copy rides on the chunked pipeline and the content-addressed
    // cache: rounds warm the guest cache, and the final stop-and-copy
    // ships warmed chunks as refs.
    config_.pipelined = true;
    config_.chunk_dedup = true;
  }
  if (config_.resume) {
    // Resume acks against the chunk manifest, so it needs the chunked
    // stream and the content-addressed cache.
    config_.pipelined = true;
    config_.chunk_dedup = true;
  }
}

MigrationManager::~MigrationManager() = default;

ThreadPool* MigrationManager::CompressionPool() {
  if (config_.compress_pool != nullptr) {
    return config_.compress_pool;
  }
  // Process-shared pool, one per width: a fleet of managers compresses on
  // the same workers instead of spawning pool-per-device threads. The
  // encoded output is a pure function of the input and pool width, so
  // sharing changes no bytes.
  return ThreadPool::Shared(config_.compress_threads);
}

Status MigrationManager::Prepare(const RunningApp& app,
                                 MigrationReport& report) {
  Device& device = *app.device;
  SimClock& clock = device.clock();
  ScopedTimer timer(clock, report.prepare);

  // 1. Background the app: resumed activities pause, then the task idler
  //    stops them and the WindowManager frees their surfaces.
  FLUX_RETURN_IF_ERROR(device.activity_manager().MoveAppToBackground(app.pid));
  if (config_.wait_for_task_idler) {
    clock.Advance(device.activity_manager().idle_stop_delay());
  }
  device.activity_manager().RunTaskIdler();

  // 2. Trim memory at the highest severity: flush renderer caches, destroy
  //    hardware resources and GL contexts (§3.3).
  FLUX_RETURN_IF_ERROR(device.activity_manager().RequestTrimMemory(
      app.pid, kTrimMemoryComplete));

  // 3. Flux's eglUnload: remove the vendor GL library from every process of
  //    the app (helpers rarely hold one, but the invariant is per-process).
  for (const Pid pid : app.all_pids.empty() ? std::vector<Pid>{app.pid}
                                            : app.all_pids) {
    FLUX_RETURN_IF_ERROR(device.egl().EglUnload(pid));
  }

  device.context().SpendCpu(config_.prepare_fixed);
  return OkStatus();
}

Result<Bytes> MigrationManager::BuildPayload(const RunningApp& app,
                                             MigrationReport& report) {
  Device& device = *app.device;
  ScopedTimer timer(device.clock(), report.checkpoint);

  // Recording stops with the app frozen; the log travels with the image.
  home_.recorder().PauseRecording(app.pid);
  const CallLog* log = home_.recorder().LogFor(app.pid);
  if (log == nullptr) {
    return FailedPrecondition("app is not managed by the home Flux agent");
  }

  const std::vector<Pid> pids =
      app.all_pids.empty() ? std::vector<Pid>{app.pid} : app.all_pids;
  FLUX_ASSIGN_OR_RETURN(
      CriaCheckpointResult cria,
      Cria::CheckpointTree(device, pids, *app.thread, config_.trace));
  report.cria = cria.stats;
  report.image_raw_bytes = cria.image.size();
  // Digest of the raw image as checkpointed; the guest recomputes it after
  // reassembly so tests can assert end-to-end byte identity. Host-side
  // work only — no simulated time.
  report.image_hash =
      FluxHash128(ByteSpan(cria.image.data(), cria.image.size()));
  if (!config_.pipelined) {
    // Pipelined mode charges serialize (and compress) per chunk from the
    // overlapped stage schedule in TransferPipelined, not up front.
    device.context().SpendCpu(
        CpuCost(device, cria.image.size(), config_.serialize_mbps));
  }

  ArchiveWriter payload;
  payload.PutU32(kPayloadMagic);
  payload.PutString(app.package);

  // Hardware snapshot for Adaptive Replay's diffing.
  ArchiveWriter hw;
  HardwareSnapshot::FromContext(device.context()).Serialize(hw);
  payload.PutSection(hw);

  // The pruned call log.
  ArchiveWriter log_section;
  log->Serialize(log_section);
  report.log_bytes = log_section.size();
  payload.PutSection(log_section);

  // The CRIA image, compressed for transfer. Pipelined mode splits it into
  // fixed-size chunks — each an independent stream, compressed across host
  // threads — and charges the serialize/compress CPU from the overlapped
  // stage schedule (TransferPipelined) instead of up front here.
  if (config_.pipelined) {
    PipelineStats& stats = report.pipeline;
    stats.enabled = true;
    stats.chunk_bytes = std::clamp<uint64_t>(config_.pipeline_chunk_bytes,
                                             4 * 1024, 64ull * 1024 * 1024);
    const uint32_t chunk_size = static_cast<uint32_t>(stats.chunk_bytes);
    if (config_.compress_image) {
      const ByteSpan image_span(cria.image.data(), cria.image.size());
      LzChunkDedupPlan plan;
      if (config_.chunk_dedup) {
        // Content-addressed delta transfer: hash every raw chunk, ask the
        // guest's cache which ones it already holds (the manifest bytes and
        // round trip are charged to the wire in TransferPipelined), and
        // ship hits as 16-byte refs. Every chunk also lands in the home
        // cache so the return hop can dedup against this checkpoint.
        DedupStats& dedup = report.dedup;
        dedup.enabled = true;
        plan.stored_fallback = true;
        plan.hashes = LzChunkHashes(image_span, chunk_size);
        plan.ref_chunks.assign(plan.hashes.size(), 0);
        // The resume handshake re-offers exactly this manifest.
        payload_chunk_hashes_ = plan.hashes;
        if (config_.resume) {
          // Chunk-granular delivery needs the raw chunks at transfer time:
          // the guest caches each as its wire window closes.
          resume_raw_image_.assign(image_span.begin(), image_span.end());
        }
        dedup.chunk_count = static_cast<uint32_t>(plan.hashes.size());
        dedup.manifest_wire_bytes = ManifestWireBytes(plan.hashes.size());
        ChunkCache& guest_cache = guest_.chunk_cache();
        ChunkCache& home_cache = home_.chunk_cache();
        for (size_t i = 0; i < plan.hashes.size(); ++i) {
          const uint64_t begin = uint64_t{i} * stats.chunk_bytes;
          const uint64_t len = std::min<uint64_t>(stats.chunk_bytes,
                                                  image_span.size() - begin);
          const ByteSpan chunk(image_span.data() + begin, len);
          if (guest_cache.HasValid(plan.hashes[i])) {
            plan.ref_chunks[i] = 1;
            ++dedup.ref_chunks;
            dedup.ref_raw_bytes += len;
          }
          home_cache.Insert(plan.hashes[i], chunk);
        }
      }
      LzChunkStreams streams = LzCompressChunkStreamsDeduped(
          image_span, chunk_size, CompressionPool(), plan);
      Bytes().swap(cria.image);  // the streams carry the content now
      stats.chunk_count = static_cast<uint32_t>(streams.chunks.size());
      stats.chunk_kind = streams.kinds;
      stats.chunk_wire_bytes.reserve(streams.chunks.size());
      for (size_t i = 0; i < streams.chunks.size(); ++i) {
        stats.chunk_wire_bytes.push_back(streams.ChunkWireBytes(i));
        if (streams.KindOf(i) == LzChunkKind::kStored) {
          ++report.dedup.stored_chunks;
        }
      }
      if (!stats.chunk_wire_bytes.empty()) {
        stats.chunk_wire_bytes[0] += streams.HeaderBytes();
      }
      report.image_compressed_bytes = streams.ContainerSize();
      payload.PutBool(true);
      // Frame the container straight into the payload, releasing each chunk
      // buffer as it lands: peak memory stays ~1x the compressed image.
      const size_t token = payload.BeginBytes();
      LzFrameChunkContainer(
          streams, [&payload](ByteSpan part) { payload.AppendRaw(part); },
          /*release_chunks=*/true);
      payload.EndBytes(token);
    } else {
      const uint64_t raw = cria.image.size();
      stats.chunk_count = static_cast<uint32_t>(
          raw == 0 ? 0 : (raw + stats.chunk_bytes - 1) / stats.chunk_bytes);
      stats.chunk_wire_bytes.reserve(stats.chunk_count);
      for (uint32_t i = 0; i < stats.chunk_count; ++i) {
        stats.chunk_wire_bytes.push_back(
            std::min<uint64_t>(stats.chunk_bytes,
                               raw - uint64_t{i} * stats.chunk_bytes));
      }
      report.image_compressed_bytes = raw;
      payload.PutBool(false);
      payload.PutBytes(ByteSpan(cria.image.data(), cria.image.size()));
      Bytes().swap(cria.image);
    }
    return payload.TakeData();
  }

  if (config_.compress_image) {
    report.compress.begin = device.clock().now();
    Bytes compressed = LzCompress(
        ByteSpan(cria.image.data(), cria.image.size()));
    device.context().SpendCpu(
        CpuCost(device, report.image_raw_bytes, config_.compress_mbps));
    report.compress.end = device.clock().now();
    // The raw image is dead once compressed; free it before the payload
    // append so peak checkpoint memory stays ~1x the image, not ~3x.
    Bytes().swap(cria.image);
    payload.PutBool(true);
    payload.PutBytes(ByteSpan(compressed.data(), compressed.size()));
    report.image_compressed_bytes = compressed.size();
  } else {
    report.compress.begin = device.clock().now();
    report.compress.end = report.compress.begin;
    payload.PutBool(false);
    payload.PutBytes(ByteSpan(cria.image.data(), cria.image.size()));
    report.image_compressed_bytes = report.image_raw_bytes;
    Bytes().swap(cria.image);
  }
  return payload.TakeData();
}

Result<Bytes> MigrationManager::BuildPayloadPrecopy(const RunningApp& app,
                                                    const AppSpec& spec,
                                                    MigrationReport& report) {
  Device& device = *app.device;
  Device& guest_device = guest_.device();
  SimClock& clock = device.clock();
  WifiNetwork& wifi = device.wifi();
  FlightRecorder* home_rec = &device.flight_recorder();
  PrecopyStats& pre = report.precopy;
  pre.enabled = true;
  pre.window.begin = clock.now();

  const std::vector<Pid> pids =
      app.all_pids.empty() ? std::vector<Pid>{app.pid} : app.all_pids;

  // The app is prepared (backgrounded, trimmed, GL-free) but its processes
  // keep running until the freeze: this write load dirties the heap at the
  // workload's rate from every AdvanceWithTicks slice below.
  PrecopyWriteLoad load(device, pids, spec);
  precopy_mutator_ = [&load](SimDuration elapsed) { load.Apply(elapsed); };

  const uint32_t chunk_size = static_cast<uint32_t>(std::clamp<uint64_t>(
      config_.pipeline_chunk_bytes, 4 * 1024, 64ull * 1024 * 1024));
  const EffectiveLink link = wifi.LinkBetween(device.profile().radio,
                                              guest_device.profile().radio);
  // Hostile profile: round traffic is charged framed (arithmetic — the
  // per-frame codec runs only in the stop-and-copy); clean leaves every
  // byte count identical.
  const bool shaped = !config_.net_profile.IsClean();
  FrameStreamOptions fopts;
  fopts.frame_payload_bytes = config_.frame_payload_bytes;
  fopts.fec_group_data_frames = config_.fec_group_data_frames;
  fopts.fec = config_.fec;
  auto charged = [&](uint64_t bytes) {
    return shaped ? FramedWireBytes(bytes, fopts) : bytes;
  };
  ChunkCache& guest_cache = guest_.chunk_cache();
  ChunkCache& home_cache = home_.chunk_cache();
  const int cores = std::clamp(config_.compress_threads, 1, 4);

  Bytes current;             // the image as of the latest cut
  uint64_t epoch = 0;        // dirty epoch opened at that cut
  uint64_t pending_prev = 0; // pending raw bytes at the previous cut
  bool converged = false;
  std::string stop_reason;

  for (int round = 0; round < config_.precopy_max_rounds; ++round) {
    PrecopyRound r;
    r.index = round;
    r.interval.begin = clock.now();
    const SimTime t0 = clock.now();

    // Cut: a full checkpoint on round 0, a dirty-segment delta applied to
    // the running image after — falling back to a full cut if the address
    // space changed shape since the base cut.
    const uint64_t prev_epoch = epoch;
    epoch = Cria::BeginDirtyEpoch(device, pids);
    bool full_cut = round == 0;
    if (!full_cut) {
      FLUX_ASSIGN_OR_RETURN(
          CriaIncrementalResult delta,
          Cria::CheckpointIncremental(device, pids, prev_epoch,
                                      config_.trace));
      auto patched = Cria::ApplyIncremental(
          ByteSpan(current.data(), current.size()),
          ByteSpan(delta.delta.data(), delta.delta.size()));
      if (patched.ok()) {
        current = patched.TakeValue();
      } else if (patched.status().code() == StatusCode::kUnsupported) {
        full_cut = true;
      } else {
        return patched.status();
      }
    }
    if (full_cut) {
      FLUX_ASSIGN_OR_RETURN(
          CriaCheckpointResult full,
          Cria::CheckpointTree(device, pids, *app.thread, config_.trace));
      current = std::move(full.image);
    }

    // Plan: which chunks of this cut the guest cache is missing, and what
    // they would cost. Dirty tracking is segment-granular, but the wire
    // works in content-addressed chunks — a re-written page only re-ships
    // its chunk if the bytes actually changed, so the pending set (not
    // DirtyBytesSince) is what termination must reason about.
    const ByteSpan image_span(current.data(), current.size());
    const std::vector<Hash128> hashes = LzChunkHashes(image_span, chunk_size);
    r.chunk_count = static_cast<uint32_t>(hashes.size());
    struct Planned {
      size_t index;
      uint64_t begin;
      uint64_t len;
      uint64_t wire;
    };
    std::vector<Planned> plan_chunks;
    for (size_t i = 0; i < hashes.size(); ++i) {
      const uint64_t begin = uint64_t{i} * chunk_size;
      const uint64_t len =
          std::min<uint64_t>(chunk_size, image_span.size() - begin);
      if (guest_cache.HasValid(hashes[i])) {
        continue;
      }
      // Compress for the wire, with the dedup container's stored fallback
      // for incompressible chunks.
      const ByteSpan chunk(image_span.data() + begin, len);
      uint64_t wire = len;
      if (config_.compress_image) {
        const Bytes packed = LzCompress(chunk);
        if (packed.size() < len) {
          wire = packed.size();
        }
      }
      plan_chunks.push_back({i, begin, len, wire});
      r.pending_raw_bytes += len;
    }
    r.pending_chunks = static_cast<uint32_t>(plan_chunks.size());
    pre.dirty_bytes += r.pending_raw_bytes;

    // Bandwidth-aware termination: what would freezing at this cut cost?
    // The pending chunks pay the full serialize → wire → restore path in
    // the stop-and-copy; everything else rides the cache as refs.
    uint64_t pending_wire = 0;
    for (const Planned& p : plan_chunks) {
      pending_wire += charged(p.wire);
    }
    r.est_stop_copy =
        CpuCost(device, r.pending_raw_bytes, config_.serialize_mbps) +
        wifi.TransferTime(pending_wire, link) +
        CpuCost(guest_device, r.pending_raw_bytes, config_.restore_mbps);
    FLUX_EVENT(home_rec, flight_events::kSubMigration,
               flight_events::kMigrationPrecopyRound, EventSeverity::kInfo,
               static_cast<uint64_t>(round), r.pending_raw_bytes);
    if (r.est_stop_copy <= config_.precopy_stop_copy_target) {
      // Freeze here: this cut is a probe, nothing streams, the pending
      // chunks ship in the stop-and-copy itself.
      converged = true;
      r.interval.end = clock.now();
      pre.rounds.push_back(r);
      break;
    }
    if (round > 0 && pending_prev > 0 &&
        static_cast<double>(r.pending_raw_bytes) >
            config_.precopy_min_round_shrink *
                static_cast<double>(pending_prev)) {
      stop_reason = StrFormat(
          "pending set stopped shrinking (%llu -> %llu bytes in round %d)",
          static_cast<unsigned long long>(pending_prev),
          static_cast<unsigned long long>(r.pending_raw_bytes), round);
      r.interval.end = clock.now();
      pre.rounds.push_back(r);
      break;
    }
    pending_prev = r.pending_raw_bytes;

    // Stream the missing chunks, warming both caches for the final
    // stop-and-copy's dedup pass. Round 0 streams the whole image; later
    // rounds only the chunks the writes actually changed.
    for (const Planned& p : plan_chunks) {
      const ByteSpan chunk(image_span.data() + p.begin, p.len);
      home_cache.Insert(hashes[p.index], chunk);
      if (!config_.resume) {
        // Resume mode defers the guest insert to each chunk's wire finish
        // below — chunk-granular delivery is what a mid-round outage
        // resumes against.
        guest_cache.Insert(hashes[p.index], chunk);
      }
      r.raw_bytes_sent += p.len;
      r.wire_bytes += charged(p.wire);
    }
    r.chunks_sent = static_cast<uint32_t>(plan_chunks.size());

    // Pace the simulated clock along a serialize → compress → wire →
    // decompress schedule (no restore stage: the guest only caches). The
    // app keeps mutating while this advances — that is the race pre-copy
    // iterates against.
    {
      std::vector<PipelineStageModel> stages(4);
      stages[0].name = "serialize";
      stages[1].name = "compress";
      stages[2].name = "wire";
      stages[3].name = "decompress";
      for (auto& stage : stages) {
        stage.chunk_cost.reserve(plan_chunks.size());
      }
      for (size_t i = 0; i < plan_chunks.size(); ++i) {
        const Planned& p = plan_chunks[i];
        stages[0].chunk_cost.push_back(
            CpuCost(device, p.len, config_.serialize_mbps));
        stages[1].chunk_cost.push_back(
            config_.compress_image
                ? CpuCost(device, p.len, config_.compress_mbps) / cores
                : 0);
        SimDuration wire_cost =
            wifi.TransferTime(charged(p.wire), link) - link.latency;
        if (i == 0) {
          wire_cost += link.latency;
        }
        stages[2].chunk_cost.push_back(wire_cost);
        stages[3].chunk_cost.push_back(
            config_.compress_image && p.wire < p.len
                ? CpuCost(guest_device, p.len, config_.decompress_mbps)
                : 0);
      }
      const PipelinePlan plan = SchedulePipeline(stages);
      if (!config_.resume) {
        if (!AdvanceWithTicks(t0 + plan.makespan, &wifi)) {
          precopy_mutator_ = nullptr;
          return Unavailable("network lost during pre-copy round");
        }
      } else {
        // Chunk-granular round pacing: advance to each chunk's wire-stage
        // finish, deliver it into the guest cache, and ride out outages
        // with the resume handshake — the round continues where it stopped
        // instead of aborting the migration (PR 6 follow-up).
        constexpr size_t kWireStage = 2;
        SimDuration round_extra = 0;
        for (size_t i = 0; i < plan_chunks.size(); ++i) {
          const Planned& p = plan_chunks[i];
          while (!AdvanceWithTicks(
              t0 + plan.finish[kWireStage][i] + round_extra, &wifi)) {
            auto resumed =
                ResumeAfterOutage(wifi, link, hashes, charged(p.wire),
                                  "network lost during pre-copy round",
                                  report);
            if (!resumed.ok()) {
              precopy_mutator_ = nullptr;
              return resumed.status();
            }
            round_extra += resumed.value().extra;
            r.wire_bytes += resumed.value().wire_bytes;
          }
          guest_cache.Insert(hashes[p.index],
                             ByteSpan(image_span.data() + p.begin, p.len));
        }
        AdvanceWithTicks(t0 + plan.makespan + round_extra);
      }
      wifi.AccountTraffic(r.wire_bytes);
      pre.wire_bytes += r.wire_bytes;
    }
    r.interval.end = clock.now();
    pre.rounds.push_back(r);
  }

  // Freeze: the app stops mutating; everything after this is the
  // stop-and-copy the user can perceive.
  precopy_mutator_ = nullptr;
  pre.converged = converged;
  pre.window.end = clock.now();
  if (!converged) {
    if (stop_reason.empty()) {
      stop_reason = StrFormat("round budget (%d) exhausted",
                              config_.precopy_max_rounds);
    }
    // Not fatal — the stop-and-copy still runs, just longer than the
    // target — but it is a policy failure worth evidence: freeze both
    // flight-recorder rings and the counters for post-hoc analysis.
    FLUX_TRACE_COUNT(config_.trace, trace_names::kPrecopyAbortedConvergence,
                     1);
    last_forensics_ = BuildForensics(
        "precopy",
        Internal("pre-copy did not converge: " + stop_reason),
        /*rolled_back=*/false, ReplayAuditJournal{}, report);
    report.forensics = last_forensics_;
  }

  // The final cut. A write can race the freeze (the test hook models
  // one): if anything dirtied after the cut, the image is stale — re-cut
  // instead of silently dropping the bytes. The mutator is off, so the
  // loop terminates as soon as the racing writer goes quiet.
  Bytes payload;
  for (int cut = 0;; ++cut) {
    const uint64_t final_epoch = Cria::BeginDirtyEpoch(device, pids);
    report.pipeline = PipelineStats{};
    report.dedup = DedupStats{};
    FLUX_ASSIGN_OR_RETURN(payload, BuildPayload(app, report));
    if (cut == 0 && config_.precopy_after_final_cut) {
      config_.precopy_after_final_cut();
    }
    if (Cria::DirtyBytesSince(device, pids, final_epoch) == 0) {
      break;
    }
    ++pre.final_recuts;
    FLUX_TRACE_COUNT(config_.trace, trace_names::kPrecopyFinalRecuts, 1);
    if (cut >= 4) {
      return Internal("pre-copy final cut kept racing writes");
    }
  }
  // The warm-up rounds live inside the checkpoint interval (the user is
  // still at the target menu; §4): fold the window back in. The end gets
  // re-stamped by TransferPipelined at the pipeline-fill boundary.
  report.checkpoint.begin = pre.window.begin;

  FLUX_TRACE_COUNT(config_.trace, trace_names::kPrecopyRounds,
                   pre.rounds.size());
  FLUX_TRACE_COUNT(config_.trace, trace_names::kPrecopyWireBytes,
                   pre.wire_bytes);
  FLUX_TRACE_COUNT(config_.trace, trace_names::kPrecopyDirtyBytes,
                   pre.dirty_bytes);
  uint64_t resent = 0;
  for (const PrecopyRound& r : pre.rounds) {
    if (r.index > 0) {
      resent += r.chunks_sent;
    }
  }
  FLUX_TRACE_COUNT(config_.trace, trace_names::kPrecopyChunksResent, resent);
  return payload;
}

Result<AppDataSync> MigrationManager::SyncAppData(const RunningApp& app,
                                                  const AppSpec& spec,
                                                  MigrationReport& report) {
  Device& home_device = *app.device;
  Device& guest_device = guest_.device();
  ScopedTimer timer(home_device.clock(), report.data_sync);

  // Verify (and if needed refresh) the paired APK (§3.1). This is a real
  // protocol exchange: the clock advances here, for exactly these bytes.
  FLUX_ASSIGN_OR_RETURN(
      uint64_t apk_wire,
      VerifyPairedApk(home_, guest_, spec, config_.trace));

  // Delta-sync the app's data directories into the pairing root.
  const std::string pair_root = FluxAgent::PairRoot(home_device.name());
  SyncOptions options;
  options.compress = true;
  uint64_t data_wire = 0;
  const std::string data_dir = "/data/data/" + app.package;
  if (home_device.filesystem().Exists(data_dir)) {
    FLUX_ASSIGN_OR_RETURN(
        SyncStats sync,
        SyncTree(home_device.filesystem(), data_dir, guest_device.filesystem(),
                 pair_root + data_dir, options));
    data_wire += sync.WireBytes();
  }
  const std::string sd_dir = "/sdcard/Android/data/" + app.package;
  if (home_device.filesystem().Exists(sd_dir)) {
    FLUX_ASSIGN_OR_RETURN(
        SyncStats sync,
        SyncTree(home_device.filesystem(), sd_dir, guest_device.filesystem(),
                 pair_root + sd_dir, options));
    data_wire += sync.WireBytes();
  }
  return AppDataSync{apk_wire, data_wire};
}

bool MigrationManager::AdvanceWithTicks(SimTime target, WifiNetwork* watch) {
  Device& home_device = home_.device();
  Device& guest_device = guest_.device();
  SimClock& clock = home_device.clock();
  const SimDuration slice =
      config_.transfer_tick > 0 ? config_.transfer_tick : Millis(250);
  while (clock.now() < target) {
    if (watch != nullptr && !watch->UpAt(clock.now())) {
      return false;
    }
    const SimDuration step = std::min<SimDuration>(slice, target - clock.now());
    clock.Advance(step);
    if (precopy_mutator_) {
      // Pre-copy rounds only: the app is still running at home and keeps
      // dirtying its heap while chunks stream.
      precopy_mutator_(step);
    }
    home_device.Tick();
    guest_device.Tick();
    if (config_.telemetry_poll) {
      // Read-only sampler poll (TimeSeriesSampler::Poll) — observes
      // counter state mid-flight without touching simulated state.
      config_.telemetry_poll();
    }
  }
  return watch == nullptr || watch->UpAt(clock.now());
}

Result<MigrationManager::ResumeOutcome> MigrationManager::ResumeAfterOutage(
    WifiNetwork& wifi, const EffectiveLink& link,
    const std::vector<Hash128>& manifest, uint64_t resend_wire,
    const char* fail_msg, MigrationReport& report) {
  SimClock& clock = home_.device().clock();
  ResumeStats& res = report.resume;
  ++res.interruptions;
  if (!config_.resume) {
    return Unavailable(fail_msg);
  }
  if (static_cast<int>(res.attempts) >= config_.resume_max_attempts) {
    return Unavailable(StrFormat(
                           "resume attempt budget (%d) exhausted",
                           config_.resume_max_attempts))
        .WithCause(Unavailable(fail_msg));
  }
  const SimTime down_at = clock.now();
  SimTime recovery = 0;
  if (!wifi.NextUpAt(down_at, &recovery)) {
    return Unavailable("link lost permanently; nothing to resume to")
        .WithCause(Unavailable(fail_msg));
  }
  if (recovery - down_at > static_cast<SimTime>(config_.resume_wait_max)) {
    return Unavailable(
               StrFormat("outage outlasts resume_wait_max (%.1f s down)",
                         ToSecondsF(static_cast<SimDuration>(recovery -
                                                             down_at))))
        .WithCause(Unavailable(fail_msg));
  }
  res.enabled = true;
  TimedInterval stall;
  stall.begin = down_at;
  // Wait out the outage; both devices keep ticking (and a pre-copy app
  // keeps dirtying its heap — the stall is part of the round's race).
  AdvanceWithTicks(recovery);
  ++res.attempts;

  // The handshake (PROTOCOL.md §8): one kResumeOffer frame carrying the
  // manifest out, one kResumeAck frame carrying the availability bitmap
  // back. Same shape as the dedup manifest exchange, plus frame headers;
  // the offer header carries the 16-byte trace-context field (§7.1), so
  // the resumed transfer re-joins the same causal trace on the guest.
  const uint64_t n = manifest.size();
  const uint64_t offer_bytes = kFrameHeaderSize + 32 + 16 * n;
  const uint64_t ack_bytes = kFrameHeaderSize + 8 + (n + 7) / 8;
  const SimDuration handshake =
      wifi.TransferTime(offer_bytes, link) + wifi.TransferTime(ack_bytes, link);
  AdvanceWithTicks(clock.now() + handshake);
  res.handshake_wire_bytes += offer_bytes + ack_bytes;

  // The ack: chunks the guest's cache already holds — everything delivered
  // before the outage plus anything warm from earlier hops — never travel
  // again. Only the chunk that was in flight re-sends, in full.
  uint32_t acked = 0;
  for (const Hash128& hash : manifest) {
    if (guest_.chunk_cache().HasValid(hash)) {
      ++acked;
    }
  }
  res.chunks_acked += acked;
  res.lost_bytes += resend_wire;
  res.retransmit_bytes += resend_wire;
  stall.end = clock.now();
  res.stalls.push_back(stall);
  res.stalled += stall.end - stall.begin;
  FLUX_EVENT(&home_.device().flight_recorder(), flight_events::kSubMigration,
             flight_events::kMigrationResume, EventSeverity::kWarning,
             res.attempts, acked);

  ResumeOutcome out;
  out.wire_bytes = offer_bytes + ack_bytes + resend_wire;
  out.extra = (stall.end - stall.begin) +
              (resend_wire > 0
                   ? wifi.TransferTime(resend_wire, link) - link.latency
                   : 0);
  return out;
}

Status MigrationManager::Transfer(const RunningApp& app, const AppSpec& spec,
                                  uint64_t payload_bytes,
                                  MigrationReport& report) {
  Device& home_device = *app.device;
  Device& guest_device = guest_.device();
  ScopedTimer timer(home_device.clock(), report.transfer);

  if (!home_device.wifi().UpAt(home_device.clock().now())) {
    return Unavailable("network unreachable during migration transfer");
  }
  FLUX_ASSIGN_OR_RETURN(AppDataSync sync, SyncAppData(app, spec, report));
  report.data_sync_bytes = sync.total();
  report.total_wire_bytes = report.data_sync_bytes + payload_bytes;
  if (!config_.net_profile.IsClean()) {
    // Serial path, mean-field model: framing overhead plus expected-loss
    // retransmissions as deterministic arithmetic (the pipelined path runs
    // the real per-frame codec; DESIGN.md §13). Jitter and rate dips are
    // folded into the delivery rate, not drawn per frame.
    FrameStreamOptions fopts;
    fopts.frame_payload_bytes = config_.frame_payload_bytes;
    fopts.fec_group_data_frames = config_.fec_group_data_frames;
    fopts.fec = config_.fec;
    const double delivery =
        1.0 - std::min(0.9, config_.net_profile.MeanLossRate());
    report.total_wire_bytes = static_cast<uint64_t>(std::ceil(
        static_cast<double>(FramedWireBytes(report.total_wire_bytes, fopts)) /
        delivery));
    report.frame_wire.enabled = true;
    report.frame_wire.wire_bytes = report.total_wire_bytes;
  }

  const EffectiveLink link = home_device.wifi().LinkBetween(
      home_device.profile().radio, guest_device.profile().radio);
  // The world keeps moving while bytes are in flight: advance in slices,
  // ticking both devices so task idlers run and due alarms fire at the
  // right simulated time.
  const bool delivered = home_device.wifi().TransferWithTicks(
      home_device.clock(), report.total_wire_bytes, link,
      config_.transfer_tick, [&home_device, &guest_device] {
        home_device.Tick();
        guest_device.Tick();
      });
  if (!delivered) {
    return Unavailable("network lost mid-transfer; payload incomplete");
  }
  return OkStatus();
}

Status MigrationManager::TransferPipelined(const RunningApp& app,
                                           const AppSpec& spec,
                                           ByteSpan payload,
                                           MigrationReport& report) {
  Device& home_device = *app.device;
  Device& guest_device = guest_.device();
  SimClock& clock = home_device.clock();
  WifiNetwork& wifi = home_device.wifi();
  PipelineStats& stats = report.pipeline;
  const uint64_t payload_bytes = payload.size();

  // Hostile-network path (DESIGN.md §13): a non-clean profile frames every
  // wire byte and runs the real frame codec per chunk; resume additionally
  // rides out recoverable outages. Both off (the default) leaves this
  // function byte-identical to the baseline schedule — `charged` is the
  // identity and every new branch below is dead.
  const bool shaped = !config_.net_profile.IsClean();
  FrameStreamOptions fopts;
  fopts.frame_payload_bytes = config_.frame_payload_bytes;
  fopts.fec_group_data_frames = config_.fec_group_data_frames;
  fopts.fec = config_.fec;
  auto charged = [&](uint64_t bytes) {
    return shaped ? FramedWireBytes(bytes, fopts) : bytes;
  };
  if (config_.resume) {
    report.resume.enabled = true;
  }

  // The pipeline's time origin: checkpoint work (serialize + compress) was
  // deferred by BuildPayload and is charged from here via the schedule, so
  // the checkpoint interval stamped there collapses to ~0 and gets
  // re-stamped below.
  SimTime t0 = clock.now();
  if (!wifi.UpAt(t0)) {
    // Resume mode treats a recoverable outage at entry like one mid-stream:
    // wait it out, then start the pipeline at recovery.
    SimTime recovery = 0;
    if (!config_.resume || !wifi.NextUpAt(t0, &recovery) ||
        recovery - t0 > static_cast<SimTime>(config_.resume_wait_max)) {
      return Unavailable("network unreachable during migration transfer");
    }
    AdvanceWithTicks(recovery);
    t0 = clock.now();
  }

  // APK verification + data sync run first on the wire, concurrent with
  // home-side serialization of the early chunks: they are the wire stage's
  // initial busy period.
  FLUX_ASSIGN_OR_RETURN(AppDataSync sync, SyncAppData(app, spec, report));
  report.data_sync_bytes = sync.total();
  const SimDuration sync_elapsed = clock.now() - t0;

  const EffectiveLink link = wifi.LinkBetween(home_device.profile().radio,
                                              guest_device.profile().radio);

  const size_t count = stats.chunk_count;
  uint64_t container_bytes = 0;
  for (const uint64_t wire : stats.chunk_wire_bytes) {
    container_bytes += wire;
  }
  // Payload bytes outside the image container (magic, package name, hw +
  // log sections) ship with the data sync, ahead of the chunk stream.
  const uint64_t prefix_payload = payload_bytes - container_bytes;

  // Post-copy composition: only the priority prefix of chunks streams in
  // the foreground; deferred chunks cost nothing on the foreground wire
  // (they stream in the background; demand paging serves faults).
  size_t foreground_chunks = count;
  if (config_.post_copy && count > 0) {
    const double fraction =
        std::clamp(config_.post_copy_priority_fraction, 0.05, 1.0);
    foreground_chunks = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(static_cast<double>(count) * fraction)));
    foreground_chunks = std::min(foreground_chunks, count);
    for (size_t i = foreground_chunks; i < count; ++i) {
      report.deferred_bytes += charged(stats.chunk_wire_bytes[i]);
    }
  }
  // The manifest handshake (hashes out, availability bitmap back) is real
  // wire traffic even though its latency mostly hides under the data sync.
  // Under a profile every component is charged framed: chunks per chunk,
  // the non-image prefix as one stream, and the manifest as two control
  // frames (kManifest + kManifestAck).
  uint64_t container_charged = 0;
  for (const uint64_t wire : stats.chunk_wire_bytes) {
    container_charged += charged(wire);
  }
  const uint64_t manifest_charged =
      report.dedup.manifest_wire_bytes +
      (shaped && report.dedup.enabled ? 2 * kFrameHeaderSize : 0);
  const uint64_t foreground_wire = report.data_sync_bytes +
                                   charged(prefix_payload) + container_charged -
                                   report.deferred_bytes + manifest_charged;

  // Per-chunk stage costs from the same models as the serial path. The
  // compress stage fans out over the device's cores (quad-core baseline),
  // which is what the host thread pool mirrors in wall-clock time.
  const int cores = std::clamp(config_.compress_threads, 1, 4);
  std::vector<PipelineStageModel> stages(5);
  stages[0].name = "serialize";
  stages[1].name = "compress";
  stages[2].name = "wire";
  stages[3].name = "decompress";
  stages[4].name = "restore";
  for (auto& stage : stages) {
    stage.chunk_cost.reserve(count);
  }
  for (size_t i = 0; i < count; ++i) {
    const uint64_t raw_i = std::min<uint64_t>(
        stats.chunk_bytes,
        report.image_raw_bytes - uint64_t{i} * stats.chunk_bytes);
    // Dedup mode: a ref chunk never runs the codec — the home side ships
    // its hash and the guest memcpys verified cache content. A stored
    // chunk still paid the compress attempt (that is how it was found
    // incompressible) but decodes with a plain copy.
    const LzChunkKind kind = i < stats.chunk_kind.size()
                                 ? static_cast<LzChunkKind>(stats.chunk_kind[i])
                                 : LzChunkKind::kLz;
    // Pre-copy: a ref chunk was serialized during the warm-up rounds (the
    // dirty bitmap proves it unchanged since), and the guest applied its
    // cached content then too — both endpoints skip it in the stop-and-copy.
    const bool prewarmed = config_.precopy && kind == LzChunkKind::kRef;
    stages[0].chunk_cost.push_back(
        prewarmed ? 0 : CpuCost(home_device, raw_i, config_.serialize_mbps));
    stages[1].chunk_cost.push_back(
        config_.compress_image && kind != LzChunkKind::kRef
            ? CpuCost(home_device, raw_i, config_.compress_mbps) / cores
            : 0);
    SimDuration wire_cost =
        i < foreground_chunks
            ? wifi.TransferTime(charged(stats.chunk_wire_bytes[i]), link) -
                  link.latency
            : 0;
    if (i == 0) {
      wire_cost += link.latency;  // one stream handshake, not one per chunk
    }
    stages[2].chunk_cost.push_back(wire_cost);
    stages[3].chunk_cost.push_back(
        config_.compress_image && kind == LzChunkKind::kLz
            ? CpuCost(guest_device, raw_i, config_.decompress_mbps)
            : 0);
    stages[4].chunk_cost.push_back(
        prewarmed ? 0 : CpuCost(guest_device, raw_i, config_.restore_mbps));
  }
  // The wire is busy before chunk 0 can stream: the sync protocol itself
  // (already on the clock — `sync_elapsed` covers the APK verification
  // exchange), then the data-sync bytes + non-image payload prefix still
  // owed to the stream. Only the data-dir bytes are owed: the APK bytes
  // rode the verification exchange inside sync_elapsed, so charging
  // sync.total() here would bill them twice (the pre-trace phase timing
  // did exactly that — pinned by PipelineTest.ApkResyncChargedOnce). The
  // stream handshake latency is charged once, on chunk 0.
  SimDuration wire_offset =
      sync_elapsed +
      wifi.TransferTime(charged(sync.data_wire_bytes + prefix_payload), link) -
      link.latency;
  if (report.dedup.enabled) {
    // The manifest handshake: hashes go out as soon as the checkpoint is
    // hashed, and the home streams data chunks optimistically while the
    // availability bitmap is in flight — only a hop that actually encodes
    // ref chunks had to wait for the reply. Even then the round trip
    // overlaps the data sync on the same link and the home-side fill of
    // chunk 0 (hashing finishes before compression begins), so it delays
    // the stream only when it outlasts both.
    // 32-byte manifest header: framing fields + the 16-byte trace-context
    // field (PROTOCOL.md §7.1), matching ManifestWireBytes above.
    const uint64_t hashes_out = 32 + 16 * uint64_t{report.dedup.chunk_count} +
                                (shaped ? kFrameHeaderSize : 0);
    const uint64_t bitmap_back = 8 +
                                 (uint64_t{report.dedup.chunk_count} + 7) / 8 +
                                 (shaped ? kFrameHeaderSize : 0);
    report.dedup.manifest_rtt = wifi.TransferTime(hashes_out, link) +
                                wifi.TransferTime(bitmap_back, link);
    const SimDuration fill0 =
        count > 0 ? stages[0].chunk_cost[0] + stages[1].chunk_cost[0] : 0;
    if (report.dedup.ref_chunks > 0 && report.dedup.manifest_rtt > fill0) {
      wire_offset = std::max(wire_offset, report.dedup.manifest_rtt);
    }
  }
  stages[2].initial_offset = wire_offset;

  const PipelinePlan plan = SchedulePipeline(stages);

  stats.makespan = plan.makespan;
  stats.stages = plan.stages;
  // What the strictly serial staging would have cost for the same work:
  // full-image serialize + single-core compress, one monolithic transfer,
  // then decompress + restore — the Figure 13 sum.
  stats.serial_estimate =
      CpuCost(home_device, report.image_raw_bytes, config_.serialize_mbps) +
      (config_.compress_image
           ? CpuCost(home_device, report.image_raw_bytes, config_.compress_mbps)
           : 0) +
      sync_elapsed + wifi.TransferTime(foreground_wire, link) +
      (config_.compress_image
           ? CpuCost(guest_device, report.image_raw_bytes,
                     config_.decompress_mbps)
           : 0) +
      CpuCost(guest_device, report.image_raw_bytes, config_.restore_mbps);
  stats.saved = stats.serial_estimate > stats.makespan
                    ? stats.serial_estimate - stats.makespan
                    : 0;

  // Now walk the simulated clock along the schedule. The checkpoint
  // interval (home-side fill) ends when chunk 0 is compressed and ready to
  // ship; everything after that is perceived as transfer.
  constexpr size_t kCompress = 1;
  constexpr size_t kWire = 2;
  const SimDuration fill =
      count > 0 ? plan.stages[kCompress].first_finish : 0;
  if (clock.now() < t0 + fill) {
    AdvanceWithTicks(t0 + fill);
  }
  report.checkpoint.end = clock.now();
  report.transfer.begin = clock.now();

  // The compress sub-phase, re-derived from the schedule: chunk 0's
  // compress start through the last chunk's compress finish. It extends
  // past checkpoint.end into the transfer window — compression overlaps
  // the wire by design; it is a contained detail, not a sixth timeline
  // phase (Total() stays the sum of the five + tail).
  if (count > 0 && config_.compress_image &&
      plan.stages[kCompress].busy > 0) {
    report.compress.begin = t0 + plan.finish[kCompress][0] -
                            stages[kCompress].chunk_cost[0];
    report.compress.end = t0 + plan.stages[kCompress].finish;
  } else {
    report.compress.begin = report.checkpoint.end;
    report.compress.end = report.checkpoint.end;
  }

#if FLUX_TRACE_ENABLED
  // Per-chunk stage spans on "pipeline/<stage>" tracks, straight from the
  // schedule (zero-cost chunks — deduped refs, deferred wire — skipped).
  if (Tracer* trace = config_.trace; trace != nullptr) {
    for (size_t s = 0; s < stages.size(); ++s) {
      const std::string track =
          std::string(trace_names::kTrackPipelinePrefix) + stages[s].name;
      // Per-chunk stage latencies also feed the pipeline.<stage>_us
      // histograms (the name matches the kHistPipeline* constants).
      TraceHistogram* hist =
          trace->histogram("pipeline." + stages[s].name + "_us");
      for (size_t i = 0; i < count; ++i) {
        const SimDuration cost = stages[s].chunk_cost[i];
        if (cost <= 0) {
          continue;
        }
        hist->Record(static_cast<uint64_t>(cost));
        const SimTime end = t0 + plan.finish[s][i];
        trace->EmitSpanOnTrack("chunk " + std::to_string(i), track,
                               end - cost, end);
      }
    }
  }
#endif  // FLUX_TRACE_ENABLED
  FLUX_TRACE_COUNT(config_.trace, trace_names::kMigrationChunksTotal,
                   stats.chunk_count);
  FLUX_TRACE_COUNT(config_.trace, trace_names::kMigrationChunksDeduped,
                   report.dedup.ref_chunks);

  // Stream the chunks: advance to each wire-stage finish, watching for
  // outages at every tick boundary.
  SimDuration extra = 0;    // hostile/resume time beyond the loss-free plan
  uint64_t extra_wire = 0;  // retransmissions + handshakes on the air
  if (!shaped && !config_.resume) {
    // Baseline: the loss-free schedule, aborting on any outage.
    if (!AdvanceWithTicks(t0 + stages[kWire].initial_offset + link.latency,
                          &wifi)) {
      return Unavailable("network lost mid-transfer; payload incomplete");
    }
    for (size_t i = 0; i < foreground_chunks; ++i) {
      if (!AdvanceWithTicks(t0 + plan.finish[kWire][i], &wifi)) {
        return Unavailable("network lost mid-transfer; payload incomplete");
      }
    }
  } else {
    FlightRecorder* home_rec = &home_device.flight_recorder();
    FrameWireStats& fw = report.frame_wire;
    fw.enabled = fw.enabled || shaped;
    std::optional<LinkShaper> shaper;
    if (shaped) {
      shaper.emplace(config_.net_profile,
                     FluxHash64(ByteSpan(reinterpret_cast<const uint8_t*>(
                                             app.package.data()),
                                         app.package.size()),
                                /*seed=*/0x6672616d) ^
                         config_.net_seed);
    }
    // Rides out an outage at any tick boundary: resume handshake, then the
    // in-flight bytes re-send and the rest of the schedule shifts by the
    // stall (`extra` accumulates across chunks).
    auto advance_stream = [&](SimTime target, uint64_t resend_wire) -> Status {
      while (!AdvanceWithTicks(target + extra, &wifi)) {
        auto resumed = ResumeAfterOutage(
            wifi, link, payload_chunk_hashes_, resend_wire,
            "network lost mid-transfer; payload incomplete", report);
        FLUX_RETURN_IF_ERROR(resumed.status());
        extra += resumed.value().extra;
        extra_wire += resumed.value().wire_bytes;
      }
      return OkStatus();
    };
    FLUX_RETURN_IF_ERROR(advance_stream(
        t0 + stages[kWire].initial_offset + link.latency, /*resend_wire=*/0));
    uint64_t chunk_off = payload.size() - container_bytes;
    uint32_t next_seq = 0;
    uint32_t next_group = 0;
    for (size_t i = 0; i < foreground_chunks; ++i) {
      const uint64_t chunk_len = stats.chunk_wire_bytes[i];
      uint64_t in_flight = charged(chunk_len);
      if (shaper) {
        // The real codec over this chunk's payload bytes: encode, lose,
        // CRC-reject corrupt arrivals, FEC-reconstruct, retransmit — and
        // the reassembly is checked byte-for-byte against what was sent.
        FLUX_ASSIGN_OR_RETURN(
            const ChunkTransmission tx,
            TransmitFramedChunk(payload.subspan(chunk_off, chunk_len), *shaper,
                                fopts, next_seq, next_group, home_rec));
        next_seq = tx.next_seq;
        next_group = tx.next_group;
        fw.frames_sent += tx.frames_sent;
        fw.data_frames += tx.data_frames;
        fw.parity_frames += tx.parity_frames;
        fw.frames_lost += tx.frames_lost;
        fw.crc_errors += tx.crc_errors;
        fw.frames_recovered += tx.frames_recovered;
        fw.frames_retransmitted += tx.frames_retransmitted;
        fw.wire_bytes += tx.wire_bytes;
        fw.lost_bytes += tx.lost_bytes;
        fw.retransmit_bytes += tx.retransmit_bytes;
        extra_wire += tx.retransmit_bytes;
        in_flight = tx.wire_bytes;
        // Time beyond the loss-free framed plan: retransmission rounds,
        // this chunk's jitter draw, and a rate dip stretching its window.
        SimDuration chunk_extra = shaper->NextJitter();
        if (tx.retransmit_bytes > 0) {
          chunk_extra +=
              wifi.TransferTime(tx.retransmit_bytes, link) - link.latency;
        }
        const double dip = shaper->NextRateFactor();
        if (dip < 1.0) {
          const SimDuration base =
              wifi.TransferTime(tx.wire_bytes, link) - link.latency;
          chunk_extra += FromSecondsF(ToSecondsF(base) * (1.0 / dip - 1.0));
        }
        extra += chunk_extra;
      }
      FLUX_RETURN_IF_ERROR(
          advance_stream(t0 + plan.finish[kWire][i], in_flight));
      if (config_.resume && i < payload_chunk_hashes_.size() &&
          !resume_raw_image_.empty()) {
        // Chunk-granular delivery: the guest caches each chunk as its wire
        // window closes, so a resume ack covers exactly the delivered
        // prefix (plus anything warm from earlier hops).
        const uint64_t begin = uint64_t{i} * stats.chunk_bytes;
        if (begin < resume_raw_image_.size()) {
          const uint64_t len = std::min<uint64_t>(
              stats.chunk_bytes, resume_raw_image_.size() - begin);
          guest_.chunk_cache().Insert(
              payload_chunk_hashes_[i],
              ByteSpan(resume_raw_image_.data() + begin, len));
        }
      }
      chunk_off += chunk_len;
    }
  }
  wifi.AccountTraffic(foreground_wire + extra_wire);
  report.total_wire_bytes = foreground_wire + extra_wire;
  report.transfer.end = clock.now();
  Bytes().swap(resume_raw_image_);  // the guest cache holds the chunks now

  if (report.frame_wire.enabled) {
    FLUX_TRACE_COUNT(config_.trace, trace_names::kNetFramesSent,
                     report.frame_wire.frames_sent);
    FLUX_TRACE_COUNT(config_.trace, trace_names::kNetFramesLost,
                     report.frame_wire.frames_lost);
    FLUX_TRACE_COUNT(config_.trace, trace_names::kNetFrameCrcErrors,
                     report.frame_wire.crc_errors);
    FLUX_TRACE_COUNT(config_.trace, trace_names::kNetFramesRecovered,
                     report.frame_wire.frames_recovered);
    FLUX_TRACE_COUNT(config_.trace, trace_names::kNetFramesRetransmitted,
                     report.frame_wire.frames_retransmitted);
  }
  if (report.resume.enabled) {
    FLUX_TRACE_COUNT(config_.trace, trace_names::kMigrationResumeAttempts,
                     report.resume.attempts);
    FLUX_TRACE_COUNT(config_.trace, trace_names::kMigrationResumeChunksAcked,
                     report.resume.chunks_acked);
    FLUX_TRACE_COUNT(config_.trace,
                     trace_names::kMigrationResumeRetransmitBytes,
                     report.resume.retransmit_bytes);
    FLUX_TRACE_COUNT(config_.trace, trace_names::kMigrationResumeLostBytes,
                     report.resume.lost_bytes);
  }

  // The guest-side drain (decompress + restore-apply beyond the last wire
  // finish) is charged by RestoreOnGuest up to this deadline, shifted by
  // whatever the hostile path added.
  pipeline_restore_deadline_ = t0 + plan.makespan + extra;
  return OkStatus();
}

Result<CriaRestoredApp> MigrationManager::RestoreOnGuest(
    ByteSpan payload, MigrationReport& report, CallLog& log_out,
    HardwareSnapshot& hw_out) {
  Device& guest_device = guest_.device();
  ScopedTimer timer(guest_device.clock(), report.restore);

  ArchiveReader reader(payload);
  uint32_t magic = 0;
  FLUX_RETURN_IF_ERROR(reader.GetU32(magic));
  if (magic != kPayloadMagic) {
    return Corrupt("not a Flux migration payload");
  }
  std::string package;
  FLUX_RETURN_IF_ERROR(reader.GetString(package));

  ArchiveReader hw_section({});
  FLUX_RETURN_IF_ERROR(reader.GetSection(hw_section));
  FLUX_ASSIGN_OR_RETURN(hw_out, HardwareSnapshot::Deserialize(hw_section));

  ArchiveReader log_section({});
  FLUX_RETURN_IF_ERROR(reader.GetSection(log_section));
  FLUX_ASSIGN_OR_RETURN(log_out, CallLog::Deserialize(log_section));

  bool compressed = false;
  ByteSpan image_view;
  FLUX_RETURN_IF_ERROR(reader.GetBool(compressed));
  // Zero-copy view into the payload: the image is only staged once more if
  // it needs decompressing.
  FLUX_RETURN_IF_ERROR(reader.GetBytesView(image_view));
  Bytes image_bytes;
  ByteSpan image = image_view;
  if (compressed) {
    if (LzIsChunkedStream(image_view)) {
      LzChunkRefResolver resolver;
      if (config_.chunk_dedup) {
        // Ref chunks resolve from this device's cache; Fetch re-verifies
        // content against the hash, so a poisoned entry reads as a miss
        // and the decode fails loudly instead of corrupting the restore.
        resolver = [this](const Hash128& hash, Bytes& out) {
          return guest_.chunk_cache().Fetch(hash, out);
        };
      }
      FLUX_ASSIGN_OR_RETURN(Bytes raw,
                            LzDecompressChunks(image_view, resolver));
      image_bytes = std::move(raw);
    } else {
      FLUX_ASSIGN_OR_RETURN(Bytes raw, LzDecompress(image_view));
      image_bytes = std::move(raw);
    }
    if (!config_.pipelined) {
      guest_device.context().SpendCpu(
          CpuCost(guest_device, image_bytes.size(), config_.decompress_mbps));
    }
    image = ByteSpan(image_bytes.data(), image_bytes.size());
  }
  if (!config_.pipelined) {
    guest_device.context().SpendCpu(
        CpuCost(guest_device, image.size(), config_.restore_mbps));
  }
  report.restored_image_hash = FluxHash128(image);
  if (config_.chunk_dedup && LzIsChunkedStream(image_view)) {
    // Feed the reassembled image back into this device's cache at the
    // container's own chunk granularity: the next hop (either direction)
    // dedups against exactly these chunks. Content is verified — the
    // container digest already matched.
    if (auto info = LzPeekChunkContainer(image_view);
        info.ok() && info.value().chunk_size > 0) {
      const uint64_t chunk = info.value().chunk_size;
      ChunkCache& cache = guest_.chunk_cache();
      for (uint64_t begin = 0; begin < image.size(); begin += chunk) {
        const uint64_t len = std::min<uint64_t>(chunk, image.size() - begin);
        const ByteSpan slice(image.data() + begin, len);
        cache.Insert(FluxHash128(slice), slice);
      }
    }
  }

  CriaRestoreOptions options;
  options.jail_root = FluxAgent::PairRoot(hw_out.device_name);
  options.trace = config_.trace;
  auto restored = Cria::Restore(guest_device, image, options);
  if (restored.ok() && config_.pipelined) {
    // Decompress + restore-apply overlapped with the transfer; only the
    // pipeline drain past the last wire byte lands in this interval.
    AdvanceWithTicks(pipeline_restore_deadline_);
  }
  return restored;
}

Status MigrationManager::Reintegrate(CriaRestoredApp& restored,
                                     const CallLog& log,
                                     const HardwareSnapshot& home_hw,
                                     MigrationReport& report,
                                     ReplayAuditJournal& journal) {
  Device& guest_device = guest_.device();
  ScopedTimer timer(guest_device.clock(), report.reintegrate);

  // The guest agent manages the app from now on; replay's own calls must
  // not be re-recorded (§3.1).
  guest_.Manage(restored.pid, restored.package);
  guest_.recorder().PauseRecording(restored.pid);

  {
    ScopedTimer replay_timer(guest_device.clock(), report.replay_window);
    FLUX_ASSIGN_OR_RETURN(
        report.replay,
        guest_.replayer().Replay(log, restored, home_hw, &journal));
  }

  // The log keeps living on the guest so the app can migrate again.
  guest_.recorder().InstallLog(restored.pid, log);

  // Connectivity: the app sees a loss and a new connection (§3.1).
  Intent lost;
  lost.action = "android.net.conn.CONNECTIVITY_CHANGE";
  lost.extras["connected"] = "false";
  guest_device.activity_manager().BroadcastIntent(lost);
  Intent regained;
  regained.action = "android.net.conn.CONNECTIVITY_CHANGE";
  regained.extras["connected"] = "true";
  regained.extras["network"] =
      guest_device.context().connectivity.network_name;
  guest_device.activity_manager().BroadcastIntent(regained);

  guest_.recorder().ResumeRecording(restored.pid);

  // Foreground: surfaces are recreated at the guest's resolution and the
  // first draw reinitializes graphics via conditional initialization.
  FLUX_RETURN_IF_ERROR(
      guest_device.activity_manager().BringAppToForeground(restored.pid));
  for (const std::string& token : restored.activity_tokens) {
    FLUX_RETURN_IF_ERROR(restored.thread->DrawFrame(token));
  }
  guest_device.context().SpendCpu(config_.reintegrate_fixed);
  return OkStatus();
}

Result<MigrationReport> MigrationManager::Migrate(const RunningApp& app,
                                                  const AppSpec& spec) {
  MigrationReport report;
  report.app = app.display_name.empty() ? app.package : app.display_name;
  report.home_device = home_.device().name();
  report.guest_device = guest_.device().name();

  // Fan the tracer out to every layer the migration touches (agents cover
  // recorder/replayer/chunk-cache/binder). Null is valid and clears it.
  home_.set_tracer(config_.trace);
  guest_.set_tracer(config_.trace);
  home_.device().wifi().set_tracer(config_.trace);
  guest_.device().wifi().set_tracer(config_.trace);
  // The shared network has no device of its own; its outage/transfer events
  // land in the home ring for the duration of this migration.
  home_.device().wifi().set_flight_recorder(
      &home_.device().flight_recorder());
  FlightRecorder* home_rec = &home_.device().flight_recorder();

  // Causal context (telemetry.h): adopt the coordinator's, or mint our own
  // for standalone runs. Both recorders and the tracer stamp it into every
  // event/span until Migrate returns; the guard clears it on every exit
  // path so the next migration on these devices starts clean.
  ctx_ = config_.trace_context.valid()
             ? config_.trace_context
             : MintTraceContext(app.package, report.home_device,
                                report.guest_device,
                                home_.device().clock().now());
  report.trace_context = ctx_;
  home_.device().flight_recorder().set_context(ctx_);
  guest_.device().flight_recorder().set_context(ctx_);
  if (config_.trace != nullptr) {
    config_.trace->set_context(ctx_);
  }
  struct ContextGuard {
    MigrationManager* manager;
    ~ContextGuard() {
      manager->home_.device().flight_recorder().clear_context();
      manager->guest_.device().flight_recorder().clear_context();
      if (manager->config_.trace != nullptr) {
        manager->config_.trace->clear_context();
      }
      manager->ctx_ = TraceContext{};
    }
  } context_guard{this};

  if (!config_.net_profile.IsClean()) {
    home_.device().wifi().ApplyProfile(
        config_.net_profile,
        FluxHash64(ByteSpan(reinterpret_cast<const uint8_t*>(
                                app.package.data()),
                            app.package.size()),
                   0x6f757467u) ^
            config_.net_seed);
  }

  if (app.device != &home_.device()) {
    return InvalidArgument("app is not running on the home agent's device");
  }
  if (!home_.IsPairedWith(guest_.device().name())) {
    return FailedPrecondition("devices are not paired");
  }
  FLUX_EVENT_DETAIL(home_rec, flight_events::kSubMigration,
                    flight_events::kMigrationStart, EventSeverity::kInfo,
                    static_cast<uint64_t>(app.pid), 0,
                    app.package + " -> " + report.guest_device);

  auto refuse = [&](std::string reason) -> MigrationReport {
    report.refusal_reason = std::move(reason);
    FLUX_EVENT_DETAIL(home_rec, flight_events::kSubMigration,
                      flight_events::kMigrationRefused,
                      EventSeverity::kWarning,
                      static_cast<uint64_t>(app.pid), 0,
                      report.refusal_reason);
    return report;
  };

  // API-level compatibility (§3.1).
  const PackageInfo* info =
      home_.device().package_manager().Find(app.package);
  if (info != nullptr &&
      info->min_api_level > guest_.device().context().api_level) {
    return refuse(StrFormat("app requires API level %d but guest runs %d",
                            info->min_api_level,
                            guest_.device().context().api_level));
  }

  // Up-front refusals (§3.4): these leave the app running untouched.
  if (!config_.enable_multiprocess &&
      home_.device().kernel().ProcessesOfUid(app.uid).size() > 1) {
    return refuse("multi-process apps are not supported");
  }
  if (home_.device().egl().HasPreservedContext(app.pid)) {
    return refuse(
        "app requests its EGL context persist in the background "
        "(setPreserveEGLContextOnPause)");
  }
  CriaCheckOptions check;
  check.allow_multiprocess = config_.enable_multiprocess;
  if (Status migratable =
          Cria::CheckMigratable(home_.device(), app.pid, check);
      !migratable.ok()) {
    return refuse(std::string(migratable.message()));
  }

  // Filled by Reintegrate's replay pass; rolled into the forensic report
  // whether the migration aborts or merely limps (partial replay failure).
  ReplayAuditJournal journal;

  // From here on the app is frozen at home; any failure before the guest
  // copy is live must roll the home copy back to a usable state. `phase`
  // names the pipeline stage that failed, for the forensic report.
  auto rollback = [&](const char* phase, const Status& cause) -> Status {
    // A restore that failed partway may have left wrapper processes on the
    // guest; tear them down so the guest is clean for the next attempt.
    if (const PackageInfo* wrapper =
            guest_.device().package_manager().Find(app.package)) {
      for (const Pid orphan :
           guest_.device().kernel().ProcessesOfUid(wrapper->uid)) {
        (void)guest_.device().KillAppProcess(orphan);
      }
    }
    FLUX_TRACE_COUNT(config_.trace, trace_names::kMigrationRollbacks, 1);
    home_.recorder().ResumeRecording(app.pid);
    Status fg = app.device->activity_manager().BringAppToForeground(app.pid);
    if (!fg.ok()) {
      // Double fault: the rollback itself failed and the app is in limbo —
      // the worst state this pipeline can reach. Counted and journaled so
      // a fleet can alert on it.
      FLUX_TRACE_COUNT(config_.trace,
                       trace_names::kMigrationRollbackFailures, 1);
      FLUX_EVENT_DETAIL(home_rec, flight_events::kSubMigration,
                        flight_events::kMigrationRollbackFailed,
                        EventSeverity::kError,
                        static_cast<uint64_t>(app.pid), 0, fg.ToString());
      FLUX_LOG(kError, "migration")
          << "rollback foreground failed: " << fg.ToString();
    }
    FLUX_EVENT_DETAIL(home_rec, flight_events::kSubMigration,
                      flight_events::kMigrationRollback,
                      EventSeverity::kError, static_cast<uint64_t>(app.pid),
                      0, phase);
    FLUX_LOG(kWarning, "migration")
        << report.app << ": migration aborted (" << cause.ToString()
        << "); app resumed on " << report.home_device;
    // Freeze the evidence only after the rollback ran, so its own events
    // (including a double fault) are in the snapshot.
    last_forensics_ =
        BuildForensics(phase, cause, /*rolled_back=*/true, std::move(journal),
                       report);
    return cause.WithCause(
        Internal(StrFormat("migration of %s from %s to %s aborted during "
                           "%s; app rolled back to %s",
                           report.app.c_str(), report.home_device.c_str(),
                           report.guest_device.c_str(), phase,
                           report.home_device.c_str())));
  };

  if (Status prepared = Prepare(app, report); !prepared.ok()) {
    return rollback("prepare", prepared);
  }
  FLUX_EVENT(home_rec, flight_events::kSubMigration,
             flight_events::kMigrationPrepared, EventSeverity::kInfo,
             static_cast<uint64_t>(app.pid), 0);
  auto payload_result = config_.precopy
                            ? BuildPayloadPrecopy(app, spec, report)
                            : BuildPayload(app, report);
  if (!payload_result.ok()) {
    return rollback("checkpoint", payload_result.status());
  }
  Bytes payload = payload_result.TakeValue();
  FLUX_EVENT(home_rec, flight_events::kSubMigration,
             flight_events::kMigrationCheckpointed, EventSeverity::kInfo,
             payload.size(), report.image_raw_bytes);
  if (config_.payload_fault) {
    // Test hook: corrupt the payload between checkpoint and transfer, as a
    // wire or storage fault would.
    config_.payload_fault(payload);
  }

  if (config_.pipelined) {
    // Chunked streaming: post-copy deferral happens per chunk inside the
    // schedule, and the transfer is paced chunk by chunk.
    if (Status transferred = TransferPipelined(
            app, spec, ByteSpan(payload.data(), payload.size()), report);
        !transferred.ok()) {
      return rollback("transfer", transferred);
    }
  } else {
    // Post-copy (§4's proposed optimization): only the hot working set of
    // the image is pre-paged before restore; the rest streams while the app
    // is already usable on the guest.
    uint64_t foreground_bytes = payload.size();
    if (config_.post_copy) {
      const double fraction =
          std::clamp(config_.post_copy_priority_fraction, 0.05, 1.0);
      foreground_bytes = static_cast<uint64_t>(
          static_cast<double>(payload.size()) * fraction);
      report.deferred_bytes = payload.size() - foreground_bytes;
    }
    if (Status transferred = Transfer(app, spec, foreground_bytes, report);
        !transferred.ok()) {
      return rollback("transfer", transferred);
    }
  }
  if (config_.precopy) {
    // The warm-up traffic already hit the wire round by round; fold it
    // into the migration's byte accounting (Figure 15).
    report.total_wire_bytes += report.precopy.wire_bytes;
  }
  FLUX_EVENT(home_rec, flight_events::kSubMigration,
             flight_events::kMigrationTransferred, EventSeverity::kInfo,
             report.total_wire_bytes, 0);

  CallLog log;
  HardwareSnapshot home_hw;
  auto restored_result = RestoreOnGuest(
      ByteSpan(payload.data(), payload.size()), report, log, home_hw);
  if (!restored_result.ok()) {
    return rollback("restore", restored_result.status());
  }
  CriaRestoredApp restored = restored_result.TakeValue();
  FLUX_EVENT(&guest_.device().flight_recorder(), flight_events::kSubMigration,
             flight_events::kMigrationRestored, EventSeverity::kInfo,
             static_cast<uint64_t>(restored.pid), 0);
  if (Status reintegrated =
          Reintegrate(restored, log, home_hw, report, journal);
      !reintegrated.ok()) {
    // The replay journal covers however far replay got; cross-check it
    // against the frozen log before the evidence is bundled.
    CrossCheckJournal(journal, log);
    return rollback("reintegrate", reintegrated);
  }
  CrossCheckJournal(journal, log);

  if (report.deferred_bytes > 0) {
    // The deferred bytes streamed while restore + reintegration ran; only
    // the tail that outlasts those stages delays completion, and none of it
    // delays the user (demand paging serves faults from the stream).
    Device& home_device = *app.device;
    const EffectiveLink link = home_device.wifi().LinkBetween(
        home_device.profile().radio, guest_.device().profile().radio);
    report.background_transfer =
        home_device.wifi().TransferTime(report.deferred_bytes, link);
    const SimDuration overlap =
        report.restore.duration() + report.reintegrate.duration();
    report.background_tail =
        std::max<SimDuration>(0, report.background_transfer - overlap);
    home_device.clock().Advance(report.background_tail);
    report.total_wire_bytes += report.deferred_bytes;
  }

  // The home copy is gone; its processes and tracking state are torn down.
  home_.Unmanage(app.pid);
  for (const Pid pid :
       app.all_pids.empty() ? std::vector<Pid>{app.pid} : app.all_pids) {
    FLUX_RETURN_IF_ERROR(home_.device().KillAppProcess(pid));
  }

  report.success = true;
  report.migrated.device = &guest_.device();
  report.migrated.pid = restored.pid;
  report.migrated.all_pids = restored.all_pids;
  report.migrated.uid = restored.uid;
  report.migrated.package = restored.package;
  report.migrated.display_name = report.app;
  report.migrated.thread = restored.thread;
  FLUX_EVENT(&guest_.device().flight_recorder(), flight_events::kSubMigration,
             flight_events::kMigrationComplete, EventSeverity::kInfo,
             static_cast<uint64_t>(restored.pid), report.total_wire_bytes);
  if (report.replay.failed > 0) {
    // The migration survived, but not unscathed: some replayed calls
    // failed on the guest. Attach the evidence to the report so the caller
    // can diagnose without re-running.
    last_forensics_ = BuildForensics(
        "replay",
        Internal(StrFormat("%d of %d replayed calls failed on %s",
                           report.replay.failed,
                           static_cast<int>(journal.entries.size()),
                           report.guest_device.c_str())),
        /*rolled_back=*/false, std::move(journal), report);
    report.forensics = last_forensics_;
  }
  FLUX_LOG(kInfo, "migration")
      << report.app << ": " << report.home_device << " -> "
      << report.guest_device << " in "
      << StrFormat("%.2f s", ToSecondsF(report.Total())) << " ("
      << report.total_wire_bytes / 1024 << " KB transferred)";
  // The perceived-unavailability distribution the SLO catalog's p99
  // objective watches (telemetry.h).
  FLUX_TRACE_OBSERVE(config_.trace, trace_names::kHistMigrationPerceived,
                     static_cast<uint64_t>(report.UserPerceived()));
  EmitTraceSpans(report);
  return report;
}

std::shared_ptr<ForensicReport> MigrationManager::BuildForensics(
    const char* phase, const Status& cause, bool rolled_back,
    ReplayAuditJournal journal, const MigrationReport& report) {
  auto forensics = std::make_shared<ForensicReport>();
  forensics->app = report.app;
  forensics->home_device = report.home_device;
  forensics->guest_device = report.guest_device;
  forensics->failure_phase = phase;
  forensics->captured_at = home_.device().clock().now();
  forensics->rolled_back = rolled_back;
  forensics->trace_context = ctx_;
  forensics->cause_chain = FlattenCauseChain(cause);
  forensics->home_events = home_.device().flight_recorder().Snapshot();
  forensics->guest_events = guest_.device().flight_recorder().Snapshot();
#if FLUX_TRACE_ENABLED
  if (config_.trace != nullptr) {
    forensics->counters = config_.trace->Counters();
    forensics->open_spans = config_.trace->OpenSpanNames();
  }
#endif
  forensics->replay_journal = std::move(journal);
  return forensics;
}

void MigrationManager::EmitTraceSpans(const MigrationReport& report) {
#if FLUX_TRACE_ENABLED
  Tracer* trace = config_.trace;
  if (trace == nullptr) {
    return;
  }
  // The five timeline phases nest under the total on the caller's thread
  // track (they tile it, so containment is exact). Sub-phases that overlap
  // a timeline phase only partially (pipelined compress runs into the
  // transfer window) go on the detail track.
  namespace names = trace_names;
  const SimTime total_end = report.reintegrate.end + report.background_tail;
  trace->EmitSpan(names::kSpanTotal, report.prepare.begin, total_end);
  trace->EmitSpan(names::kSpanPrepare, report.prepare.begin,
                  report.prepare.end);
  trace->EmitSpan(names::kSpanCheckpoint, report.checkpoint.begin,
                  report.checkpoint.end);
  trace->EmitSpan(names::kSpanTransfer, report.transfer.begin,
                  report.transfer.end);
  trace->EmitSpan(names::kSpanRestore, report.restore.begin,
                  report.restore.end);
  trace->EmitSpan(names::kSpanReintegrate, report.reintegrate.begin,
                  report.reintegrate.end);
  if (report.background_tail > 0) {
    trace->EmitSpan(names::kSpanBackgroundTail, report.reintegrate.end,
                    total_end);
  }
  trace->EmitSpanOnTrack(names::kSpanCompress, names::kTrackDetail,
                         report.compress.begin, report.compress.end);
  trace->EmitSpanOnTrack(names::kSpanReplay, names::kTrackDetail,
                         report.replay_window.begin, report.replay_window.end);
  trace->EmitSpanOnTrack(names::kSpanDataSync, names::kTrackDetail,
                         report.data_sync.begin, report.data_sync.end);
  for (const TimedInterval& stall : report.resume.stalls) {
    trace->EmitSpanOnTrack(names::kSpanResume, names::kTrackDetail,
                           stall.begin, stall.end);
  }
  if (report.precopy.enabled) {
    trace->EmitSpanOnTrack(names::kSpanPrecopyWindow, names::kTrackDetail,
                           report.precopy.window.begin,
                           report.precopy.window.end);
    for (const PrecopyRound& round : report.precopy.rounds) {
      trace->EmitSpanOnTrack(std::string(names::kSpanPrecopyRoundPrefix) +
                                 std::to_string(round.index),
                             names::kTrackPrecopy, round.interval.begin,
                             round.interval.end);
    }
  }
#else
  (void)report;
#endif  // FLUX_TRACE_ENABLED
}

}  // namespace flux
