// Chunked-migration stage scheduler (the §4 overlap the paper sketches).
//
// A pipelined migration splits the CRIA image into fixed-size chunks and
// overlaps the per-chunk stages — serialize → compress (home) → wire
// transfer → decompress → restore-apply (guest) — so simulated migration
// time approaches max(stage throughputs) plus pipeline fill/drain instead
// of sum(stage times). The scheduler is pure timing arithmetic over the
// existing cost models: stage s of chunk i starts when stage s finished
// chunk i-1 AND stage s-1 finished chunk i (every stage processes chunks
// in order — chunk framing on the wire and restore-apply are sequential).
#ifndef FLUX_SRC_FLUX_PIPELINE_H_
#define FLUX_SRC_FLUX_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/sim_clock.h"

namespace flux {

struct PipelineStageTiming {
  std::string name;
  SimDuration busy = 0;          // sum of chunk costs in this stage
  SimDuration first_finish = 0;  // when chunk 0 left this stage (from t0)
  SimDuration finish = 0;        // when the last chunk left this stage
};

// One stage's input to the scheduler.
struct PipelineStageModel {
  std::string name;
  // Cost of each chunk in this stage; every stage sees the same chunk count.
  std::vector<SimDuration> chunk_cost;
  // Time (from pipeline start) before this stage may begin its first chunk
  // — e.g. the wire stage is busy with APK verification + data-dir sync
  // before image chunks can stream.
  SimDuration initial_offset = 0;
};

struct PipelinePlan {
  SimDuration makespan = 0;  // finish time of the last stage's last chunk
  std::vector<PipelineStageTiming> stages;
  // finish[s][i] = absolute finish time (from pipeline start) of chunk i in
  // stage s; used to pace the simulated clock chunk by chunk.
  std::vector<std::vector<SimDuration>> finish;
};

// Computes the overlapped timeline. All stages must agree on chunk count.
PipelinePlan SchedulePipeline(const std::vector<PipelineStageModel>& stages);

// Per-migration pipeline statistics surfaced in MigrationReport.
struct PipelineStats {
  bool enabled = false;
  uint32_t chunk_count = 0;
  uint64_t chunk_bytes = 0;               // configured raw chunk size
  std::vector<uint64_t> chunk_wire_bytes; // container bytes per chunk
  SimDuration makespan = 0;               // overlapped image-path time
  SimDuration serial_estimate = 0;        // same work staged strictly serially
  SimDuration saved = 0;                  // serial_estimate - makespan
  // chunk_dedup mode: per-chunk LzChunkKind (kLz/kStored/kRef) so the
  // scheduler can zero the compress/decompress cost of ref chunks. Empty
  // when every chunk is a plain LZ stream.
  std::vector<uint8_t> chunk_kind;
  std::vector<PipelineStageTiming> stages;
};

// ----- iterative pre-copy (DESIGN.md §10) -----

// One pre-copy round: a checkpoint cut (full on round 0, dirty-segment
// delta after) followed by streaming the chunks the guest cache is missing.
struct PrecopyRound {
  int index = 0;                  // 0 = the full-image warm-up round
  uint32_t chunk_count = 0;       // chunks in the image at this cut
  uint32_t pending_chunks = 0;    // guest-cache misses found at this cut
  uint32_t chunks_sent = 0;       // misses actually streamed this round
  uint64_t pending_raw_bytes = 0; // raw image bytes behind the misses
  uint64_t raw_bytes_sent = 0;    // raw bytes streamed this round
  uint64_t wire_bytes = 0;        // what the streamed chunks cost on wire
  // Estimated stop-and-copy time if the migration froze at this cut
  // (serialize + wire + restore of the pending chunks; drives the
  // bandwidth-aware termination policy). A round that undercuts the
  // target is a probe: it freezes without streaming (chunks_sent = 0).
  SimDuration est_stop_copy = 0;
  TimedInterval interval;
};

// Per-migration pre-copy accounting surfaced in MigrationReport.
struct PrecopyStats {
  bool enabled = false;
  // True when a cut found the estimated stop-and-copy of its pending
  // chunks below the configured target; false when the round budget ran
  // out or the pending set stopped shrinking (routed through forensics,
  // migration continues with a longer stop-and-copy).
  bool converged = false;
  int final_recuts = 0;        // extra cuts for writes racing the freeze
  uint64_t wire_bytes = 0;     // total pre-copy wire traffic (all rounds)
  uint64_t dirty_bytes = 0;    // pending raw bytes summed over all cuts
  TimedInterval window;        // all rounds; lives inside checkpoint
  std::vector<PrecopyRound> rounds;
};

}  // namespace flux

#endif  // FLUX_SRC_FLUX_PIPELINE_H_
