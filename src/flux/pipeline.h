// Chunked-migration stage scheduler (the §4 overlap the paper sketches).
//
// A pipelined migration splits the CRIA image into fixed-size chunks and
// overlaps the per-chunk stages — serialize → compress (home) → wire
// transfer → decompress → restore-apply (guest) — so simulated migration
// time approaches max(stage throughputs) plus pipeline fill/drain instead
// of sum(stage times). The scheduler is pure timing arithmetic over the
// existing cost models: stage s of chunk i starts when stage s finished
// chunk i-1 AND stage s-1 finished chunk i (every stage processes chunks
// in order — chunk framing on the wire and restore-apply are sequential).
#ifndef FLUX_SRC_FLUX_PIPELINE_H_
#define FLUX_SRC_FLUX_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/sim_clock.h"

namespace flux {

struct PipelineStageTiming {
  std::string name;
  SimDuration busy = 0;          // sum of chunk costs in this stage
  SimDuration first_finish = 0;  // when chunk 0 left this stage (from t0)
  SimDuration finish = 0;        // when the last chunk left this stage
};

// One stage's input to the scheduler.
struct PipelineStageModel {
  std::string name;
  // Cost of each chunk in this stage; every stage sees the same chunk count.
  std::vector<SimDuration> chunk_cost;
  // Time (from pipeline start) before this stage may begin its first chunk
  // — e.g. the wire stage is busy with APK verification + data-dir sync
  // before image chunks can stream.
  SimDuration initial_offset = 0;
};

struct PipelinePlan {
  SimDuration makespan = 0;  // finish time of the last stage's last chunk
  std::vector<PipelineStageTiming> stages;
  // finish[s][i] = absolute finish time (from pipeline start) of chunk i in
  // stage s; used to pace the simulated clock chunk by chunk.
  std::vector<std::vector<SimDuration>> finish;
};

// Computes the overlapped timeline. All stages must agree on chunk count.
PipelinePlan SchedulePipeline(const std::vector<PipelineStageModel>& stages);

// Per-migration pipeline statistics surfaced in MigrationReport.
struct PipelineStats {
  bool enabled = false;
  uint32_t chunk_count = 0;
  uint64_t chunk_bytes = 0;               // configured raw chunk size
  std::vector<uint64_t> chunk_wire_bytes; // container bytes per chunk
  SimDuration makespan = 0;               // overlapped image-path time
  SimDuration serial_estimate = 0;        // same work staged strictly serially
  SimDuration saved = 0;                  // serial_estimate - makespan
  // chunk_dedup mode: per-chunk LzChunkKind (kLz/kStored/kRef) so the
  // scheduler can zero the compress/decompress cost of ref chunks. Empty
  // when every chunk is a plain LZ stream.
  std::vector<uint8_t> chunk_kind;
  std::vector<PipelineStageTiming> stages;
};

}  // namespace flux

#endif  // FLUX_SRC_FLUX_PIPELINE_H_
