// The per-device Flux runtime.
//
// One FluxAgent runs on every Flux device: it arms Selective Record on the
// device's Binder driver, owns the Adaptive Replay engine, and tracks which
// peers this device has paired with (and where their synced framework trees
// live on the data partition).
#ifndef FLUX_SRC_FLUX_FLUX_AGENT_H_
#define FLUX_SRC_FLUX_FLUX_AGENT_H_

#include <memory>
#include <set>
#include <string>

#include "src/device/device.h"
#include "src/flux/chunk_cache.h"
#include "src/flux/record_engine.h"
#include "src/flux/replay_engine.h"

namespace flux {

class AppInstance;

class FluxAgent {
 public:
  explicit FluxAgent(Device& device);
  ~FluxAgent();

  FluxAgent(const FluxAgent&) = delete;
  FluxAgent& operator=(const FluxAgent&) = delete;

  Device& device() { return device_; }
  RecordEngine& recorder() { return recorder_; }
  ReplayEngine& replayer() { return replayer_; }
  // The content-addressed store backing delta transfer: seeded at pairing,
  // fed by every migration in either direction (home side on checkpoint,
  // guest side on restore).
  ChunkCache& chunk_cache() { return chunk_cache_; }

  // Attaches a tracer to every subsystem this agent owns (recorder,
  // replayer, chunk cache, the device's binder driver). Null detaches.
  void set_tracer(Tracer* tracer);
  Tracer* tracer() const { return tracer_; }

  // Starts recording the app's service calls (call after launch).
  void Manage(Pid pid, const std::string& package);
  void Unmanage(Pid pid);

  // ----- pairing bookkeeping -----
  bool IsPairedWith(const std::string& device_name) const;
  void MarkPaired(const std::string& device_name);
  // Where a given home device's synced framework/app tree lives on *this*
  // device's data partition (§3.1).
  static std::string PairRoot(const std::string& home_device_name);

 private:
  Device& device_;
  RecordEngine recorder_;
  ReplayEngine replayer_;
  ChunkCache chunk_cache_;
  std::set<std::string> paired_;
  Tracer* tracer_ = nullptr;
};

}  // namespace flux

#endif  // FLUX_SRC_FLUX_FLUX_AGENT_H_
