// The per-app call log kept by Selective Record (§3.2).
//
// An ordered list of recorded service calls. The record engine prunes it in
// place as @drop rules fire, so at migration time it contains exactly the
// calls whose effects are still live in system services — the paper reports
// the compressed log plus data-dir sync never exceeded 200 KB.
//
// Fast lane (record path): every entry carries the interned ids of its
// interface and method, and the log maintains a per-(interface_id, node_id)
// bucket index over entry slots. @drop pruning visits only the bucket a new
// call can legally prune (same interface, same target node) instead of
// scanning the whole log, removal tombstones the slot (payload freed
// immediately, slot reclaimed by amortized compaction), and WireSize() is
// maintained incrementally. The serialized format is unchanged (strings
// only; ids are re-interned on deserialize), so logs are byte-compatible
// with pre-index checkpoints.
#ifndef FLUX_SRC_FLUX_CALL_LOG_H_
#define FLUX_SRC_FLUX_CALL_LOG_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/archive.h"
#include "src/base/sim_clock.h"
#include "src/binder/parcel.h"

namespace flux {

struct CallRecord {
  uint64_t seq = 0;
  SimTime time = 0;
  std::string service;    // ServiceManager name; empty for anonymous nodes
  std::string interface;  // AIDL interface name
  std::string method;
  // Interned ids of `interface`/`method` (src/base/interner.h). Filled by
  // CallLog::Append when left 0; never serialized.
  uint32_t interface_id = 0;
  uint32_t method_id = 0;
  uint64_t node_id = 0;   // home-device node the call targeted
  Parcel args;            // the app's view (named values)
  Parcel reply;           // post-translation into the app
  bool oneway = false;
  // Cached serialized footprint of this entry (strings + parcels + fixed
  // framing); computed on append, never serialized.
  uint64_t wire_bytes = 0;
};

class CallLog {
 public:
  void Append(CallRecord record);

  // Removes entries matching `predicate`; returns how many were dropped.
  // Scans the whole log — @drop pruning should use PruneBucket.
  int RemoveIf(const std::function<bool(const CallRecord&)>& predicate);

  // Indexed pruning: runs `predicate` over only the live entries whose
  // (interface_id, node_id) equal the new call's, tombstoning matches.
  // Returns how many were dropped. Stale bucket positions are compacted out
  // in the same pass; nothing is allocated and no other bucket is touched.
  template <typename Predicate>
  int PruneBucket(uint32_t interface_id, uint64_t node_id,
                  Predicate&& predicate) {
    auto it = buckets_.find(BucketKey{interface_id, node_id});
    if (it == buckets_.end()) {
      return 0;
    }
    std::vector<uint32_t>& bucket = it->second;
    size_t write = 0;
    int removed = 0;
    for (size_t read = 0; read < bucket.size(); ++read) {
      const uint32_t slot = bucket[read];
      if (dead_[slot]) {
        continue;  // tombstoned by an earlier pass: drop the stale position
      }
      if (predicate(slots_[slot])) {
        MarkDead(slot);
        ++removed;
        continue;
      }
      bucket[write++] = slot;
    }
    bucket.resize(write);
    if (removed > 0) {
      CompactIfWorthwhile();
    }
    return removed;
  }

  // Live entries in append order. Compacts tombstones first, so the
  // reference is only valid until the next mutation (as before).
  const std::vector<CallRecord>& entries() const {
    Compact();
    return slots_;
  }
  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }
  void Clear();

  // Serialized footprint (drives transfer accounting); O(1), maintained on
  // append and removal.
  uint64_t WireSize() const { return wire_size_; }

  void Serialize(ArchiveWriter& out) const;
  static Result<CallLog> Deserialize(ArchiveReader& in);

 private:
  struct BucketKey {
    uint32_t interface_id = 0;
    uint64_t node_id = 0;
    bool operator==(const BucketKey&) const = default;
  };
  struct BucketKeyHash {
    size_t operator()(const BucketKey& key) const {
      uint64_t x = (static_cast<uint64_t>(key.interface_id) << 32) ^
                   (key.node_id * 0x9E3779B97F4A7C15ull);
      x ^= x >> 33;
      return static_cast<size_t>(x);
    }
  };

  // Interns missing ids, computes wire_bytes, appends, and indexes.
  void IndexNewEntry(CallRecord&& record);
  // Tombstones a slot: releases its payload and maintains counters.
  void MarkDead(uint32_t slot);
  // Amortized slot reclamation: compacts once tombstones outnumber live
  // entries, so each drop pays O(1) amortized.
  void CompactIfWorthwhile();
  // Removes all tombstones (order-preserving) and reindexes. Const because
  // read paths (entries()) may trigger it; logically the log is unchanged.
  void Compact() const;
  void RebuildBuckets() const;

  uint64_t next_seq_ = 1;
  uint64_t wire_size_ = 0;
  size_t live_count_ = 0;
  mutable size_t dead_count_ = 0;
  // Append-order slot arena; dead_[i] marks tombstones awaiting compaction.
  mutable std::vector<CallRecord> slots_;
  mutable std::vector<uint8_t> dead_;
  // (interface_id, node_id) -> live slot indices, ascending (may contain
  // stale positions of tombstoned slots until the next scan or compaction).
  mutable std::unordered_map<BucketKey, std::vector<uint32_t>, BucketKeyHash>
      buckets_;
};

}  // namespace flux

#endif  // FLUX_SRC_FLUX_CALL_LOG_H_
