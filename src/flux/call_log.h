// The per-app call log kept by Selective Record (§3.2).
//
// An ordered list of recorded service calls. The record engine prunes it in
// place as @drop rules fire, so at migration time it contains exactly the
// calls whose effects are still live in system services — the paper reports
// the compressed log plus data-dir sync never exceeded 200 KB.
#ifndef FLUX_SRC_FLUX_CALL_LOG_H_
#define FLUX_SRC_FLUX_CALL_LOG_H_

#include <functional>
#include <string>
#include <vector>

#include "src/base/archive.h"
#include "src/base/sim_clock.h"
#include "src/binder/parcel.h"

namespace flux {

struct CallRecord {
  uint64_t seq = 0;
  SimTime time = 0;
  std::string service;    // ServiceManager name; empty for anonymous nodes
  std::string interface;  // AIDL interface name
  std::string method;
  uint64_t node_id = 0;   // home-device node the call targeted
  Parcel args;            // the app's view (named values)
  Parcel reply;           // post-translation into the app
  bool oneway = false;
};

class CallLog {
 public:
  void Append(CallRecord record);

  // Removes entries matching `predicate`; returns how many were dropped.
  int RemoveIf(const std::function<bool(const CallRecord&)>& predicate);

  const std::vector<CallRecord>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

  // Approximate serialized footprint (drives transfer accounting).
  uint64_t WireSize() const;

  void Serialize(ArchiveWriter& out) const;
  static Result<CallLog> Deserialize(ArchiveReader& in);

 private:
  uint64_t next_seq_ = 1;
  std::vector<CallRecord> entries_;
};

}  // namespace flux

#endif  // FLUX_SRC_FLUX_CALL_LOG_H_
