// Tracing & metrics for the migration path (the observability layer).
//
// Figure 13's stage breakdown is exactly a trace: named intervals on the
// shared simulated timeline. This module makes that first-class instead of
// ad hoc per-bench timers: a Tracer collects hierarchical spans (stamped on
// the SimClock, nestable, thread-safe — the pipelined compression pool
// records from worker threads) and named monotonic counters (bytes on the
// wire, chunks deduped, calls recorded and pruned, replay adaptations,
// rollbacks). Two exporters turn one Tracer — or a batch of them — into
// something a human can read: a Chrome trace_event JSON writer (loadable in
// chrome://tracing or Perfetto) and a plain-text phase-breakdown report.
//
// Design constraints (DESIGN.md §9):
//  - lock-cheap: counters are atomics incremented relaxed through cached
//    pointers; spans take one mutex acquisition at open and one at close;
//  - sim-clock-aware: spans stamp SimTime from the world clock, so traces
//    are deterministic and phase sums reproduce the figure benches exactly;
//  - zero-cost when compiled out: every instrumentation site goes through
//    the FLUX_TRACE_* macros below, which collapse to dead code when
//    FLUX_TRACE_ENABLED is 0 (cmake -DFLUX_TRACE=OFF);
//  - runtime-toggleable: a null Tracer* disables every site at run time.
//
// This library depends only on flux_base so the net, binder, and cria
// layers (all below flux_core) can link it.
#ifndef FLUX_SRC_FLUX_TRACE_H_
#define FLUX_SRC_FLUX_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/sim_clock.h"

// Compile-time master switch. The default build compiles instrumentation
// in; configuring with -DFLUX_TRACE=OFF defines FLUX_TRACE_ENABLED=0 and
// every FLUX_TRACE_* macro below becomes a discarded dead branch.
#ifndef FLUX_TRACE_ENABLED
#define FLUX_TRACE_ENABLED 1
#endif

namespace flux {

// ----- canonical names -----
//
// Span taxonomy and counter catalog. Every counter the runtime registers is
// named here (and only here) so OBSERVABILITY.md and scripts/check_trace.py
// can enumerate them from a single source.
namespace trace_names {

// The six canonical migration phases. Every successful migration emits each
// exactly once (tests/trace_test.cc pins this). prepare..reintegrate tile
// the migration end to end on the main track; compress and replay are
// sub-phases (compress overlaps transfer on the pipelined path, so they
// live on the detail track).
inline constexpr std::string_view kSpanPrepare = "migration/prepare";
inline constexpr std::string_view kSpanCheckpoint = "migration/checkpoint";
inline constexpr std::string_view kSpanCompress = "migration/compress";
inline constexpr std::string_view kSpanTransfer = "migration/transfer";
inline constexpr std::string_view kSpanRestore = "migration/restore";
inline constexpr std::string_view kSpanReplay = "migration/replay";
// Companions: the fig13 table's fifth column, the whole migration, the
// post-copy tail past reintegration, and the pre-image data sync.
inline constexpr std::string_view kSpanReintegrate = "migration/reintegrate";
inline constexpr std::string_view kSpanTotal = "migration/total";
inline constexpr std::string_view kSpanBackgroundTail =
    "migration/background_tail";
inline constexpr std::string_view kSpanDataSync = "migration/data_sync";
// Pre-copy (DESIGN.md §10): the iterative warm-up window before the final
// stop-and-copy. The window span covers all rounds and lives inside the
// checkpoint phase on the detail track; each round additionally emits a
// "precopy/round/<n>" span on the precopy track.
inline constexpr std::string_view kSpanPrecopyWindow = "migration/precopy";
inline constexpr std::string_view kTrackPrecopy = "precopy";
inline constexpr std::string_view kSpanPrecopyRoundPrefix = "precopy/round/";
// Lower layers.
inline constexpr std::string_view kSpanCriaCheckpoint = "cria/checkpoint";
inline constexpr std::string_view kSpanCriaRestore = "cria/restore";
inline constexpr std::string_view kSpanCriaPreDump = "cria/pre_dump";
inline constexpr std::string_view kSpanPairDevices = "pairing/devices";
inline constexpr std::string_view kSpanPairApp = "pairing/app";
inline constexpr std::string_view kSpanVerifyApk = "pairing/verify_apk";
// Per-chunk pipeline stage spans land on tracks named
// "pipeline/<stage>" (serialize, compress, wire, decompress, restore).
inline constexpr std::string_view kTrackDetail = "migration/detail";
inline constexpr std::string_view kTrackPipelinePrefix = "pipeline/";
// Fleet coordinator (DESIGN.md §11): one span per coordinated migration
// (admission -> completion) and one per queue residency (submission ->
// admission), all on the "coordinator" track; pairings likewise.
inline constexpr std::string_view kTrackCoordinator = "coordinator";
inline constexpr std::string_view kSpanCoordMigration =
    "coordinator/migration";
inline constexpr std::string_view kSpanCoordQueueWait =
    "coordinator/queue_wait";
inline constexpr std::string_view kSpanCoordPairing = "coordinator/pairing";
// Resumable transfers (DESIGN.md §13): one span per connectivity stall a
// migration rode out — outage onset to the post-handshake first
// retransmitted byte — on the detail track, inside the transfer phase.
inline constexpr std::string_view kSpanResume = "migration/resume";

// Counters.
inline constexpr std::string_view kMigrationRollbacks = "migration.rollbacks";
inline constexpr std::string_view kMigrationChunksTotal =
    "migration.chunks_total";
inline constexpr std::string_view kMigrationChunksDeduped =
    "migration.chunks_deduped";
inline constexpr std::string_view kNetWireBytes = "net.wire_bytes";
inline constexpr std::string_view kNetTransfers = "net.transfers";
inline constexpr std::string_view kNetTransferTicks = "net.transfer_ticks";
// Wire framing (src/net/frame.h): per-frame outcomes under a hostile
// profile. All zero under the clean profile (framing is never exercised).
inline constexpr std::string_view kNetFramesSent = "net.frame.sent";
inline constexpr std::string_view kNetFramesLost = "net.frame.lost";
inline constexpr std::string_view kNetFrameCrcErrors = "net.frame.crc_errors";
inline constexpr std::string_view kNetFramesRecovered =
    "net.frame.fec_recovered";
inline constexpr std::string_view kNetFramesRetransmitted =
    "net.frame.retransmitted";
inline constexpr std::string_view kCacheHits = "cache.hits";
inline constexpr std::string_view kCacheMisses = "cache.misses";
inline constexpr std::string_view kCacheInsertions = "cache.insertions";
inline constexpr std::string_view kCacheRefreshes = "cache.refreshes";
inline constexpr std::string_view kCacheEvictions = "cache.evictions";
inline constexpr std::string_view kCacheVerifyFailures =
    "cache.verify_failures";
inline constexpr std::string_view kRecordTransactionsSeen =
    "record.transactions_seen";
inline constexpr std::string_view kRecordCallsRecorded =
    "record.calls_recorded";
inline constexpr std::string_view kRecordCallsPruned = "record.calls_pruned";
inline constexpr std::string_view kRecordCallsSuppressed =
    "record.calls_suppressed";
inline constexpr std::string_view kReplayCallsReplayed =
    "replay.calls_replayed";
inline constexpr std::string_view kReplayCallsProxied = "replay.calls_proxied";
inline constexpr std::string_view kReplayCallsSkipped = "replay.calls_skipped";
inline constexpr std::string_view kReplayCallsAdapted = "replay.calls_adapted";
inline constexpr std::string_view kReplayCallsFailed = "replay.calls_failed";
inline constexpr std::string_view kBinderTransactions = "binder.transactions";
inline constexpr std::string_view kCriaCheckpoints = "cria.checkpoints";
inline constexpr std::string_view kCriaRestores = "cria.restores";
inline constexpr std::string_view kCriaImageBytes = "cria.image_bytes";
inline constexpr std::string_view kPairingWireBytes = "pairing.wire_bytes";
inline constexpr std::string_view kMigrationRollbackFailures =
    "migration.rollback_failures";
// Pre-copy rounds (DESIGN.md §10).
inline constexpr std::string_view kPrecopyRounds = "precopy.rounds";
inline constexpr std::string_view kPrecopyWireBytes = "precopy.wire_bytes";
inline constexpr std::string_view kPrecopyDirtyBytes = "precopy.dirty_bytes";
inline constexpr std::string_view kPrecopyChunksResent =
    "precopy.chunks_resent";
inline constexpr std::string_view kPrecopyAbortedConvergence =
    "precopy.aborted_convergence";
inline constexpr std::string_view kPrecopyFinalRecuts = "precopy.final_recuts";
inline constexpr std::string_view kCriaIncrementalCheckpoints =
    "cria.incremental_checkpoints";
inline constexpr std::string_view kCriaIncrementalBytes =
    "cria.incremental_bytes";
// Resumable transfers (DESIGN.md §13).
inline constexpr std::string_view kMigrationResumeAttempts =
    "migration.resume_attempts";
inline constexpr std::string_view kMigrationResumeChunksAcked =
    "migration.resume_chunks_acked";
inline constexpr std::string_view kMigrationResumeRetransmitBytes =
    "migration.resume_retransmit_bytes";
inline constexpr std::string_view kMigrationResumeLostBytes =
    "migration.resume_lost_bytes";
// Fleet coordinator (DESIGN.md §11).
inline constexpr std::string_view kFleetMigrationsRequested =
    "fleet.migrations_requested";
inline constexpr std::string_view kFleetMigrationsAdmitted =
    "fleet.migrations_admitted";
inline constexpr std::string_view kFleetMigrationsCompleted =
    "fleet.migrations_completed";
inline constexpr std::string_view kFleetMigrationsRefused =
    "fleet.migrations_refused";
inline constexpr std::string_view kFleetPairingsCompleted =
    "fleet.pairings_completed";
inline constexpr std::string_view kFleetPlacementProbes =
    "fleet.placement_probes";
inline constexpr std::string_view kFleetPlacementWarmChunks =
    "fleet.placement_warm_chunks";
inline constexpr std::string_view kFleetWireBytes = "fleet.wire_bytes";
inline constexpr std::string_view kFleetDirtyBursts = "fleet.dirty_bursts";
// Parallel scheduler driver (DESIGN.md §12). Copied from
// EventScheduler::DriverStats after a fleet run; every value is a pure
// function of the schedule calls — identical at every thread count — so
// the byte-identity gate can include them in the stats digest.
inline constexpr std::string_view kFleetSchedWindows = "fleet.sched.windows";
inline constexpr std::string_view kFleetSchedWindowEvents =
    "fleet.sched.window_events";
inline constexpr std::string_view kFleetSchedSerialEvents =
    "fleet.sched.serial_events";
inline constexpr std::string_view kFleetSchedMailboxOps =
    "fleet.sched.mailbox_ops";

// Histograms (log-bucketed latency distributions; all values in simulated
// microseconds, hence the `_us` suffix — scripts/check_forensics.py keys the
// histogram catalog off it).
inline constexpr std::string_view kHistPipelineSerialize =
    "pipeline.serialize_us";
inline constexpr std::string_view kHistPipelineCompress =
    "pipeline.compress_us";
inline constexpr std::string_view kHistPipelineWire = "pipeline.wire_us";
inline constexpr std::string_view kHistPipelineDecompress =
    "pipeline.decompress_us";
inline constexpr std::string_view kHistPipelineRestore =
    "pipeline.restore_us";
// User-perceived unavailability per migration (MigrationReport::
// UserPerceived()), recorded once at the end of every traced Migrate().
// The SLO catalog's p99-perceived objective (telemetry.h) reads its
// windowed deltas.
inline constexpr std::string_view kHistMigrationPerceived =
    "migration.perceived_us";
inline constexpr std::string_view kHistRecordTxn = "record.txn_cost_us";
inline constexpr std::string_view kHistReplayCall = "replay.call_us";
inline constexpr std::string_view kHistNetTick = "net.tick_us";
// Fleet coordinator histograms: queue residency (submission -> admission)
// in simulated micros, and the in-flight migration count sampled at every
// admission (dimensionless — the one catalog entry without a `_us` unit).
// bench_fleet's percentiles come from these snapshots, not ad-hoc sorting.
inline constexpr std::string_view kHistFleetQueueWait = "fleet.queue_wait_us";
inline constexpr std::string_view kHistFleetConcurrency = "fleet.concurrency";
// Shards running per parallel window (dimensionless, like
// fleet.concurrency): the shard-utilization distribution of the parallel
// scheduler driver, fed from DriverStats::window_shards after a fleet run.
inline constexpr std::string_view kHistFleetSchedWindowShards =
    "fleet.sched.window_shards";

}  // namespace trace_names

// ----- causal trace context -----
//
// A 128-bit causal identity minted once per migration — at coordinator
// admission for fleet runs, or at MigrationManager::Migrate for standalone
// runs — and carried everywhere that migration leaves a mark: every span,
// every flight event on both devices, the forensic report, and the
// manifest/resume protocol handshakes (PROTOCOL.md §7.1). One migration,
// one context; home and guest rings agree on it, which is what lets the
// Chrome exporter stitch cross-device flow events into a single causal
// view (Dapper-style; scripts/check_telemetry.py gates the invariant).
//
// Deliberately NOT gated on FLUX_TRACE_ENABLED: the context is protocol
// data (it rides the wire in the handshake messages), so its byte cost
// must be identical whether tracing is compiled in or out. Only the
// span/event stamping compiles away.
//
// Minted deterministically (MintTraceContext in telemetry.h hashes the
// endpoints, package, and submission sim-time) — no wall clock, no
// randomness — so reruns produce identical IDs and the byte-identity
// gates hold.
struct TraceContext {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool valid() const { return (hi | lo) != 0; }
  // 32 lowercase hex chars (hi then lo); "0" is never a valid context.
  std::string ToHex() const;

  friend bool operator==(const TraceContext& a, const TraceContext& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const TraceContext& a, const TraceContext& b) {
    return !(a == b);
  }
  friend bool operator<(const TraceContext& a, const TraceContext& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

// A monotonic counter. Instrumented code caches the pointer returned by
// Tracer::counter() (registration takes the registry mutex once) and then
// increments lock-free; the pointer stays valid for the Tracer's lifetime.
class TraceCounter {
 public:
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A log-bucketed latency histogram: 64 power-of-two buckets plus exact
// count/sum/max, all relaxed atomics, so recording from hot paths costs two
// relaxed adds (the record/binder cached-pointer pattern applies — cache the
// pointer from Tracer::histogram() at set_tracer time). Percentiles are
// estimated by linear interpolation inside the bucket and clamped to the
// exact max, which is plenty for p50/p90/p99 dashboards.
class TraceHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  }

  // Records `n` samples of `value` in O(1) — used to import precomputed
  // distributions (e.g. the scheduler driver's windows-by-shard-count
  // table) without n Record calls.
  void RecordMany(uint64_t value, uint64_t n) {
    if (n == 0) {
      return;
    }
    count_.fetch_add(n, std::memory_order_relaxed);
    sum_.fetch_add(value * n, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    buckets_[BucketOf(value)].fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  // A copyable, mergeable view — the bench harness merges snapshots across
  // matrix cells before computing fleet-level percentiles.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    std::array<uint64_t, kBuckets> buckets{};

    void Merge(const Snapshot& other);
    // p in [0, 100]; 0 when empty.
    double Percentile(double p) const;
  };
  Snapshot Take() const;

 private:
  static int BucketOf(uint64_t value) {
    int bits = 0;
    while (value != 0) {
      ++bits;
      value >>= 1;
    }
    return bits < kBuckets ? bits : kBuckets - 1;
  }

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

// One finished (or still-open: end == begin) span.
struct TraceSpanRecord {
  std::string name;
  // Empty = the opening thread's own track; non-empty = a named synthetic
  // track (per-chunk pipeline stages, the migration detail track).
  std::string track;
  SimTime begin = 0;
  SimTime end = 0;
  int thread_ord = 0;  // process-wide thread ordinal of the opener
  int depth = 0;       // RAII nesting depth on the opening thread
  // True between OpenSpan and CloseSpan; post-hoc emissions are never open.
  // Forensics uses this to report spans still active at failure time.
  bool open = false;
  // Causal identity of the migration this span belongs to; zero when the
  // span was recorded outside any migration. Stamped from the tracer's
  // ambient context (set_context) or an explicit-context emit.
  TraceContext ctx;
};

class TraceSpan;

class Tracer {
 public:
  // Spans stamp begin/end from `clock` (the world clock the migration
  // advances). The clock must outlive recording; a Tracer may outlive its
  // clock as long as no further spans are opened (exporters never touch
  // it), which lets bench harnesses keep traces after their World dies.
  explicit Tracer(const SimClock* clock) : clock_(clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const SimClock* clock() const { return clock_; }

  // Registers (or finds) a counter; the returned pointer is stable.
  TraceCounter* counter(std::string_view name);
  // Convenience for cold paths: one registry lookup per call.
  void Count(std::string_view name, uint64_t delta) {
    counter(name)->Add(delta);
  }
  // Registers (or finds) a histogram; the returned pointer is stable.
  TraceHistogram* histogram(std::string_view name);
  // Convenience for cold paths.
  void Observe(std::string_view name, uint64_t value) {
    histogram(name)->Record(value);
  }

  // Ambient causal context: every span opened or emitted while set is
  // stamped with it. MigrationManager sets it for the duration of one
  // Migrate() call (single-migration serial path); the coordinator, whose
  // post-hoc emissions interleave across migrations, passes explicit
  // contexts to the emit overloads below instead.
  void set_context(const TraceContext& ctx);
  void clear_context() { set_context(TraceContext{}); }
  TraceContext context() const;

  // Records a span with explicit stamps — for intervals re-derived after
  // the fact (the pipelined schedule, report intervals). Lands on the
  // calling thread's track at depth 0. When `ctx` is valid it overrides
  // the ambient context; when zero the ambient context (if any) applies.
  void EmitSpan(std::string_view name, SimTime begin, SimTime end,
                const TraceContext& ctx = TraceContext{});
  // Same, on a named synthetic track.
  void EmitSpanOnTrack(std::string_view name, std::string_view track,
                       SimTime begin, SimTime end,
                       const TraceContext& ctx = TraceContext{});

  // ----- inspection (tests, exporters) -----
  std::vector<TraceSpanRecord> Spans() const;
  std::vector<std::pair<std::string, uint64_t>> Counters() const;
  std::vector<std::pair<std::string, TraceHistogram::Snapshot>> Histograms()
      const;
  // Copy-free registry walks (name-sorted) for the time-series sampler's
  // hot path: Counters()/Histograms() allocate a string per entry per
  // call, which at a 250-virtual-ms cadence dominates the sampler's host
  // cost. The callback must not re-enter this Tracer (mu_ is held).
  template <typename Fn>
  void VisitCounters(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      fn(std::string_view(name), counter->value());
    }
  }
  template <typename Fn>
  void VisitHistograms(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, histogram] : histograms_) {
      fn(std::string_view(name), *histogram);
    }
  }
  // Names of spans opened via the RAII path and not yet closed (a finished
  // migration must leave this empty — tests/forensics_test.cc pins it).
  std::vector<std::string> OpenSpanNames() const;
  // Sum of durations / number of spans with this exact name.
  SimDuration SpanTotal(std::string_view name) const;
  size_t SpanCount(std::string_view name) const;

 private:
  friend class TraceSpan;

  // RAII path: opens a span stamped at clock->now(); returns slot + 1.
  size_t OpenSpan(std::string_view name);
  void CloseSpan(size_t token);

  mutable std::mutex mu_;
  const SimClock* clock_;
  TraceContext context_;
  std::vector<TraceSpanRecord> spans_;
  std::map<std::string, std::unique_ptr<TraceCounter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<TraceHistogram>, std::less<>>
      histograms_;
};

// RAII span on a Tracer's current thread track. Null tracer = no-op, which
// is the runtime toggle: instrumented code never branches on a flag, it
// just carries a possibly-null Tracer*.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(Tracer* tracer, std::string_view name) {
    if (tracer != nullptr) {
      tracer_ = tracer;
      token_ = tracer->OpenSpan(name);
    }
  }
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Ends the span early (idempotent).
  void End() {
    if (tracer_ != nullptr) {
      tracer_->CloseSpan(token_);
      tracer_ = nullptr;
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  size_t token_ = 0;
};

// ----- exporters -----

// One process row in a merged Chrome trace (the bench harness maps each
// migration cell to its own pid so 64 migrations load side by side).
struct TraceProcess {
  std::string name;
  const Tracer* tracer = nullptr;
};

// Chrome trace_event JSON ("JSON Object Format": {"traceEvents": [...]}).
// Spans become complete ("X") events; counters become one "C" sample at the
// trace end. Spans stamped with a TraceContext additionally carry it in
// args.ctx and are linked by flow events (one "s" at the context's first
// span, an "f" step at each later span, id = the context hex) so
// chrome://tracing / Perfetto draw one causal arrow chain per migration —
// across processes when home, guest, and coordinator export as separate
// TraceProcess rows. Loadable in chrome://tracing and ui.perfetto.dev.
void WriteChromeTrace(const std::vector<TraceProcess>& processes,
                      std::ostream& out);
std::string ChromeTraceJson(const Tracer& tracer);

// Durations of the canonical migration phases, summed over the spans in a
// tracer (intended use: one migration per tracer). Total() mirrors
// MigrationReport::Total(): the five timeline phases plus the post-copy
// tail — compress and replay are contained sub-phases and not added.
struct MigrationPhases {
  SimDuration prepare = 0;
  SimDuration checkpoint = 0;
  SimDuration compress = 0;
  SimDuration transfer = 0;
  SimDuration restore = 0;
  SimDuration reintegrate = 0;
  SimDuration replay = 0;
  SimDuration background_tail = 0;
  SimDuration Total() const {
    return prepare + checkpoint + transfer + restore + reintegrate +
           background_tail;
  }
};
MigrationPhases ExtractMigrationPhases(const Tracer& tracer);

// Plain-text phase breakdown + counter dump (the human-readable exporter;
// bench_fig13_breakdown derives its table from the same MigrationPhases).
std::string PhaseReportText(const Tracer& tracer);

}  // namespace flux

// ----- instrumentation macros -----
//
// All call sites go through these. When FLUX_TRACE_ENABLED is 0 they expand
// to a discarded `if (false)` branch: operands are parsed (so the code keeps
// compiling and variables count as used) but never evaluated, and the
// optimizer deletes the branch entirely.
#if FLUX_TRACE_ENABLED

#define FLUX_TRACE_SPAN(var, tracer, name) \
  ::flux::TraceSpan var((tracer), (name))
#define FLUX_TRACE_EMIT(tracer, name, begin_ts, end_ts)      \
  do {                                                       \
    ::flux::Tracer* flux_trace_t = (tracer);                 \
    if (flux_trace_t != nullptr) {                           \
      flux_trace_t->EmitSpan((name), (begin_ts), (end_ts));  \
    }                                                        \
  } while (0)
#define FLUX_TRACE_EMIT_ON_TRACK(tracer, name, track, begin_ts, end_ts)      \
  do {                                                                       \
    ::flux::Tracer* flux_trace_t = (tracer);                                 \
    if (flux_trace_t != nullptr) {                                           \
      flux_trace_t->EmitSpanOnTrack((name), (track), (begin_ts), (end_ts));  \
    }                                                                        \
  } while (0)
#define FLUX_TRACE_EMIT_ON_TRACK_CTX(tracer, name, track, begin_ts, end_ts, \
                                     ctx)                                   \
  do {                                                                      \
    ::flux::Tracer* flux_trace_t = (tracer);                                \
    if (flux_trace_t != nullptr) {                                          \
      flux_trace_t->EmitSpanOnTrack((name), (track), (begin_ts), (end_ts),  \
                                    (ctx));                                 \
    }                                                                       \
  } while (0)
#define FLUX_TRACE_COUNT(tracer, name, delta)     \
  do {                                            \
    ::flux::Tracer* flux_trace_t = (tracer);      \
    if (flux_trace_t != nullptr) {                \
      flux_trace_t->Count((name), (delta));       \
    }                                             \
  } while (0)
#define FLUX_TRACE_COUNTER_ADD(counter_ptr, delta)   \
  do {                                               \
    ::flux::TraceCounter* flux_trace_c = (counter_ptr); \
    if (flux_trace_c != nullptr) {                   \
      flux_trace_c->Add(delta);                      \
    }                                                \
  } while (0)
#define FLUX_TRACE_OBSERVE(tracer, name, value)      \
  do {                                               \
    ::flux::Tracer* flux_trace_t = (tracer);         \
    if (flux_trace_t != nullptr) {                   \
      flux_trace_t->Observe((name), (value));        \
    }                                                \
  } while (0)
#define FLUX_TRACE_HIST_RECORD(hist_ptr, value)            \
  do {                                                     \
    ::flux::TraceHistogram* flux_trace_h = (hist_ptr);     \
    if (flux_trace_h != nullptr) {                         \
      flux_trace_h->Record(value);                         \
    }                                                      \
  } while (0)

#else  // !FLUX_TRACE_ENABLED

#define FLUX_TRACE_DISCARD_(...)      \
  do {                                \
    if (false) {                      \
      (void)sizeof((__VA_ARGS__, 0)); \
    }                                 \
  } while (0)
#define FLUX_TRACE_SPAN(var, tracer, name) \
  FLUX_TRACE_DISCARD_((tracer), (name))
#define FLUX_TRACE_EMIT(tracer, name, begin_ts, end_ts) \
  FLUX_TRACE_DISCARD_((tracer), (name), (begin_ts), (end_ts))
#define FLUX_TRACE_EMIT_ON_TRACK(tracer, name, track, begin_ts, end_ts) \
  FLUX_TRACE_DISCARD_((tracer), (name), (track), (begin_ts), (end_ts))
#define FLUX_TRACE_EMIT_ON_TRACK_CTX(tracer, name, track, begin_ts, end_ts, \
                                     ctx)                                   \
  FLUX_TRACE_DISCARD_((tracer), (name), (track), (begin_ts), (end_ts), (ctx))
#define FLUX_TRACE_COUNT(tracer, name, delta) \
  FLUX_TRACE_DISCARD_((tracer), (name), (delta))
#define FLUX_TRACE_COUNTER_ADD(counter_ptr, delta) \
  FLUX_TRACE_DISCARD_((counter_ptr), (delta))
#define FLUX_TRACE_OBSERVE(tracer, name, value) \
  FLUX_TRACE_DISCARD_((tracer), (name), (value))
#define FLUX_TRACE_HIST_RECORD(hist_ptr, value) \
  FLUX_TRACE_DISCARD_((hist_ptr), (value))

#endif  // FLUX_TRACE_ENABLED

#endif  // FLUX_SRC_FLUX_TRACE_H_
