#include "src/flux/replay_engine.h"

#include <cmath>

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace flux {

Result<uint64_t> ReplayContext::ResolveTarget(const CallRecord& record) {
  if (!record.service.empty()) {
    return guest->service_manager().GetServiceHandle(app->pid,
                                                     record.service);
  }
  auto it = app->node_mapping.find(record.node_id);
  if (it == app->node_mapping.end()) {
    return NotFound(StrFormat(
        "replay: no guest mapping for home node %llu (call %s.%s)",
        static_cast<unsigned long long>(record.node_id),
        record.interface.c_str(), record.method.c_str()));
  }
  return guest->binder().GetOrCreateHandle(app->pid, it->second);
}

Status ReplayContext::RewriteRefs(Parcel& args) const {
  for (size_t i = 0; i < args.size(); ++i) {
    if (auto* ref = std::get_if<ParcelObjectRef>(&args.at(i))) {
      if (ref->space == ParcelObjectRef::Space::kNode) {
        auto it = app->node_mapping.find(ref->value);
        if (it == app->node_mapping.end()) {
          return NotFound(StrFormat(
              "replay: argument references unmapped home node %llu",
              static_cast<unsigned long long>(ref->value)));
        }
        ref->value = it->second;
      }
      // Handle-space refs resolve through the reinstated handle table.
    }
  }
  return OkStatus();
}

Result<Parcel> ReplayContext::Reissue(const CallRecord& record) {
  FLUX_ASSIGN_OR_RETURN(uint64_t handle, ResolveTarget(record));
  Parcel args = record.args;
  FLUX_RETURN_IF_ERROR(RewriteRefs(args));
  if (record.oneway) {
    FLUX_RETURN_IF_ERROR(guest->binder().TransactOneway(
        app->pid, handle, record.method, std::move(args)));
    FLUX_RETURN_IF_ERROR(
        guest->binder().DeliverAsync(guest->binder().NodeOwner(
            guest->binder().LookupNode(app->pid, handle).value_or(0))));
    return Parcel();
  }
  return guest->binder().Transact(app->pid, handle, record.method,
                                  std::move(args));
}

ReplayEngine::ReplayEngine(Device& guest) : guest_(guest) {
  RegisterDefaultProxies();
}

void ReplayEngine::RegisterProxy(std::string qualified_name, Proxy proxy) {
  proxies_[std::move(qualified_name)] = std::move(proxy);
}

bool ReplayEngine::HasProxy(std::string_view qualified_name) const {
  return proxies_.count(std::string(qualified_name)) > 0;
}

Result<ReplayStats> ReplayEngine::Replay(const CallLog& log,
                                         CriaRestoredApp& app,
                                         const HardwareSnapshot& home_hw,
                                         ReplayAuditJournal* journal) {
  ReplayContext context;
  context.guest = &guest_;
  context.app = &app;
  context.home_hw = home_hw;

  FlightRecorder* recorder = &guest_.flight_recorder();
  FLUX_EVENT(recorder, flight_events::kSubReplay, flight_events::kReplayStart,
             EventSeverity::kInfo, log.size(),
             static_cast<uint64_t>(app.pid));
  TraceHistogram* hist_call = nullptr;
#if FLUX_TRACE_ENABLED
  if (tracer_ != nullptr) {
    hist_call = tracer_->histogram(trace_names::kHistReplayCall);
  }
#endif
  (void)hist_call;

  // Appends one audit row per call; kept cheap (no-op) without a journal.
  uint64_t index = 0;
  auto journal_call = [&](const CallRecord& record, ReplayOutcome outcome,
                          std::string detail) {
    if (outcome == ReplayOutcome::kFailed) {
      FLUX_EVENT_DETAIL(recorder, flight_events::kSubReplay,
                        flight_events::kReplayCallFailed,
                        EventSeverity::kWarning, index, record.seq,
                        record.interface + "." + record.method);
    }
    if (journal != nullptr) {
      ReplayAuditEntry entry;
      entry.index = index;
      entry.seq = record.seq;
      entry.interface = record.interface;
      entry.method = record.method;
      entry.outcome = outcome;
      entry.detail = std::move(detail);
      journal->entries.push_back(std::move(entry));
    }
    ++index;
  };

  for (const CallRecord& record : log.entries()) {
    context.audit_note.clear();
    const ReplayStats before = context.stats;
    const SimTime call_begin = guest_.clock().now();
    const RecordRule* rule =
        guest_.record_rules().FindRule(record.interface, record.method);
    if (rule != nullptr && !rule->replay_proxy.empty()) {
      auto it = proxies_.find(rule->replay_proxy);
      if (it == proxies_.end()) {
        Status status =
            Internal("no replay proxy registered as " + rule->replay_proxy);
        journal_call(record, ReplayOutcome::kFailed, status.ToString());
        return status;
      }
      ++context.stats.proxied;
      Status status = it->second(record, context);
      if (!status.ok()) {
        ++context.stats.failed;
        FLUX_LOG(kWarning, "replay")
            << record.interface << "." << record.method
            << " proxy failed: " << status.ToString();
        journal_call(record, ReplayOutcome::kFailed, status.ToString());
      } else if (context.stats.skipped > before.skipped) {
        journal_call(record, ReplayOutcome::kSkipped, context.audit_note);
      } else if (context.stats.adapted > before.adapted) {
        journal_call(record, ReplayOutcome::kAdapted, context.audit_note);
      } else {
        journal_call(record, ReplayOutcome::kProxied, context.audit_note);
      }
      FLUX_TRACE_HIST_RECORD(hist_call, guest_.clock().now() - call_begin);
      continue;
    }
    auto reply = context.Reissue(record);
    if (reply.ok()) {
      ++context.stats.replayed;
      journal_call(record, ReplayOutcome::kVerbatim, {});
    } else {
      ++context.stats.failed;
      FLUX_LOG(kWarning, "replay")
          << record.interface << "." << record.method
          << " replay failed: " << reply.status().ToString();
      journal_call(record, ReplayOutcome::kFailed,
                   reply.status().ToString());
    }
    FLUX_TRACE_HIST_RECORD(hist_call, guest_.clock().now() - call_begin);
  }
  FLUX_EVENT(recorder, flight_events::kSubReplay, flight_events::kReplayDone,
             context.stats.failed > 0 ? EventSeverity::kWarning
                                      : EventSeverity::kInfo,
             static_cast<uint64_t>(context.stats.replayed +
                                   context.stats.proxied),
             static_cast<uint64_t>(context.stats.failed));
  FLUX_TRACE_COUNT(tracer_, trace_names::kReplayCallsReplayed,
                   static_cast<uint64_t>(context.stats.replayed));
  FLUX_TRACE_COUNT(tracer_, trace_names::kReplayCallsProxied,
                   static_cast<uint64_t>(context.stats.proxied));
  FLUX_TRACE_COUNT(tracer_, trace_names::kReplayCallsSkipped,
                   static_cast<uint64_t>(context.stats.skipped));
  FLUX_TRACE_COUNT(tracer_, trace_names::kReplayCallsAdapted,
                   static_cast<uint64_t>(context.stats.adapted));
  FLUX_TRACE_COUNT(tracer_, trace_names::kReplayCallsFailed,
                   static_cast<uint64_t>(context.stats.failed));
  return context.stats;
}

void ReplayEngine::RegisterDefaultProxies() {
  // Figure 10: skip alarms that fired (or lapsed) before the checkpoint.
  RegisterProxy(
      "flux.recordreplay.Proxies.alarmMgrSet",
      [](const CallRecord& record, ReplayContext& ctx) -> Status {
        const ParcelValue* trigger = record.args.FindNamed("triggerAtTime");
        const int64_t* trigger_at =
            trigger != nullptr ? std::get_if<int64_t>(trigger) : nullptr;
        if (trigger_at == nullptr) {
          return Corrupt("alarmMgrSet: no triggerAtTime argument");
        }
        if (static_cast<SimTime>(*trigger_at) <= ctx.app->checkpoint_time) {
          ++ctx.stats.skipped;
          ctx.audit_note = "alarm trigger predates checkpoint";
          return OkStatus();
        }
        FLUX_ASSIGN_OR_RETURN(Parcel reply, ctx.Reissue(record));
        (void)reply;
        return OkStatus();
      });

  RegisterProxy(
      "flux.recordreplay.Proxies.alarmMgrSetTimeZone",
      [](const CallRecord& record, ReplayContext& ctx) -> Status {
        FLUX_ASSIGN_OR_RETURN(Parcel reply, ctx.Reissue(record));
        (void)reply;
        return OkStatus();
      });

  // Rescale stream volumes to the guest's range (§3.2).
  RegisterProxy(
      "flux.recordreplay.Proxies.audioSetStreamVolume",
      [this](const CallRecord& record, ReplayContext& ctx) -> Status {
        const ParcelValue* index_value = record.args.FindNamed("index");
        const int32_t* index =
            index_value != nullptr ? std::get_if<int32_t>(index_value)
                                   : nullptr;
        if (index == nullptr) {
          return Corrupt("audioSetStreamVolume: no index argument");
        }
        const int home_max = ctx.home_hw.max_music_volume;
        const int guest_max = guest_.context().max_music_volume;
        int new_index = *index;
        if (home_max > 0 && home_max != guest_max) {
          new_index = static_cast<int>(std::lround(
              static_cast<double>(*index) * guest_max / home_max));
          ++ctx.stats.adapted;
          ctx.audit_note =
              StrFormat("volume %d of %d rescaled to %d of %d", *index,
                        home_max, new_index, guest_max);
        }
        CallRecord adapted = record;
        *std::get_if<int32_t>(
            const_cast<ParcelValue*>(adapted.args.FindNamed("index"))) =
            new_index;
        FLUX_ASSIGN_OR_RETURN(Parcel reply, ctx.Reissue(adapted));
        (void)reply;
        return OkStatus();
      });

  // Re-apply WiFi state only if it differs on the guest.
  RegisterProxy(
      "flux.recordreplay.Proxies.wifiSetEnabled",
      [this](const CallRecord& record, ReplayContext& ctx) -> Status {
        const ParcelValue* enable_value = record.args.FindNamed("enable");
        const bool* enable =
            enable_value != nullptr ? std::get_if<bool>(enable_value)
                                    : nullptr;
        if (enable != nullptr && guest_.wifi_service().enabled() == *enable) {
          ++ctx.stats.skipped;
          ctx.audit_note = "guest wifi state already matches";
          return OkStatus();
        }
        FLUX_ASSIGN_OR_RETURN(Parcel reply, ctx.Reissue(record));
        (void)reply;
        return OkStatus();
      });

  // GPS requests fall back to network positioning when the guest has no GPS
  // (the paper's "continue over the network" option, §3.2).
  RegisterProxy(
      "flux.recordreplay.Proxies.locationRequestUpdates",
      [this](const CallRecord& record, ReplayContext& ctx) -> Status {
        const ParcelValue* provider_value = record.args.FindNamed("provider");
        const std::string* provider =
            provider_value != nullptr
                ? std::get_if<std::string>(provider_value)
                : nullptr;
        CallRecord adapted = record;
        if (provider != nullptr && *provider == "gps" &&
            !guest_.context().has_gps) {
          *std::get_if<std::string>(const_cast<ParcelValue*>(
              adapted.args.FindNamed("provider"))) = "network";
          ++ctx.stats.adapted;
          ctx.audit_note = "guest lacks GPS; provider gps -> network";
          FLUX_LOG(kInfo, "replay")
              << "guest lacks GPS; forwarding location request to the "
                 "network provider";
        }
        FLUX_ASSIGN_OR_RETURN(Parcel reply, ctx.Reissue(adapted));
        (void)reply;
        return OkStatus();
      });

  RegisterProxy(
      "flux.recordreplay.Proxies.powerAcquireWakeLock",
      [](const CallRecord& record, ReplayContext& ctx) -> Status {
        FLUX_ASSIGN_OR_RETURN(Parcel reply, ctx.Reissue(record));
        (void)reply;
        return OkStatus();
      });

  // Vibrations are transient: skip ones that finished before checkpoint.
  RegisterProxy(
      "flux.recordreplay.Proxies.vibratorVibrate",
      [](const CallRecord& record, ReplayContext& ctx) -> Status {
        const ParcelValue* ms_value = record.args.FindNamed("milliseconds");
        const int64_t* ms =
            ms_value != nullptr ? std::get_if<int64_t>(ms_value) : nullptr;
        if (ms != nullptr &&
            record.time + static_cast<SimTime>(Millis(*ms)) <=
                ctx.app->checkpoint_time) {
          ++ctx.stats.skipped;
          ctx.audit_note = "vibration finished before checkpoint";
          return OkStatus();
        }
        FLUX_ASSIGN_OR_RETURN(Parcel reply, ctx.Reissue(record));
        (void)reply;
        return OkStatus();
      });

  RegisterProxy(
      "flux.recordreplay.Proxies.cameraConnect",
      [this](const CallRecord& record, ReplayContext& ctx) -> Status {
        if (!guest_.context().has_camera) {
          ++ctx.stats.skipped;
          ctx.audit_note = "guest has no camera";
          FLUX_LOG(kWarning, "replay")
              << "guest has no camera; offering network passthrough instead "
                 "of replaying connect";
          return OkStatus();
        }
        FLUX_ASSIGN_OR_RETURN(Parcel reply, ctx.Reissue(record));
        (void)reply;
        return OkStatus();
      });

  // SensorEventConnection re-creation under the original handle id (§3.2).
  RegisterProxy(
      "flux.recordreplay.Proxies.sensorCreateConnection",
      [this](const CallRecord& record, ReplayContext& ctx) -> Status {
        FLUX_ASSIGN_OR_RETURN(Parcel reply, ctx.Reissue(record));
        FLUX_ASSIGN_OR_RETURN(ParcelObjectRef new_ref, reply.ReadObject());
        // The recorded reply holds the handle the app was using.
        Parcel old_reply = record.reply;
        old_reply.RewindRead();
        FLUX_ASSIGN_OR_RETURN(ParcelObjectRef old_ref, old_reply.ReadObject());
        const uint64_t old_handle = old_ref.value;
        auto old_node_it = ctx.app->handle_to_old_node.find(old_handle);
        if (old_node_it == ctx.app->handle_to_old_node.end()) {
          return Corrupt("sensorCreateConnection: recorded handle not in "
                         "checkpointed handle table");
        }
        FLUX_ASSIGN_OR_RETURN(
            uint64_t new_node,
            guest_.binder().LookupNode(ctx.app->pid, new_ref.value));
        ctx.app->node_mapping[old_node_it->second] = new_node;
        // Inject the new connection under the previously issued handle so
        // the app's references keep working.
        Status install = guest_.binder().InstallHandleAt(
            ctx.app->pid, old_handle, new_node, 1, 0);
        if (!install.ok() &&
            install.code() != StatusCode::kAlreadyExists) {
          return install;
        }
        ++ctx.stats.adapted;
        ctx.audit_note = StrFormat(
            "connection recreated under original handle %llu",
            static_cast<unsigned long long>(old_handle));
        return OkStatus();
      });

  // Event channel: reconnect and dup2 onto the reserved descriptor (§3.2).
  RegisterProxy(
      "flux.recordreplay.Proxies.sensorGetChannel",
      [this](const CallRecord& record, ReplayContext& ctx) -> Status {
        FLUX_ASSIGN_OR_RETURN(Parcel reply, ctx.Reissue(record));
        FLUX_ASSIGN_OR_RETURN(Fd new_fd, reply.ReadFd());
        Parcel old_reply = record.reply;
        old_reply.RewindRead();
        FLUX_ASSIGN_OR_RETURN(Fd old_fd, old_reply.ReadFd());
        SimProcess* process = guest_.kernel().FindProcess(ctx.app->pid);
        if (process == nullptr) {
          return Internal("restored process vanished during replay");
        }
        if (new_fd != old_fd) {
          FLUX_RETURN_IF_ERROR(process->DupFd(new_fd, old_fd));
          FLUX_RETURN_IF_ERROR(process->CloseFd(new_fd));
        }
        ++ctx.stats.adapted;
        ctx.audit_note = StrFormat("event channel dup2'd %d -> %d", new_fd,
                                   old_fd);
        return OkStatus();
      });
}

}  // namespace flux
