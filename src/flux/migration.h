// The migration pipeline (§3.1): Migration Out + transfer + Migration In.
//
// Stages, matching Figure 13's breakdown:
//  1. preparation  — reject unmigratable apps (multi-process, preserved EGL
//                    context, external Binder connections), background the
//                    app, wait out the task idler (activities -> Stopped,
//                    surfaces freed), trim memory at the highest severity,
//                    eglUnload the vendor library;
//  2. checkpoint   — CRIA checkpoint of the process + the pruned call log +
//                    a hardware snapshot, compressed;
//  3. transfer     — APK verification, data-directory delta sync, and the
//                    compressed image over WiFi;
//  4. restore      — decompress + CRIA restore into the wrapper app's PID
//                    namespace, service handles re-bound on the guest;
//  5. reintegration— Adaptive Replay of the log, connectivity loss/regain
//                    events, bring-to-foreground and redraw at the guest's
//                    display size.
#ifndef FLUX_SRC_FLUX_MIGRATION_H_
#define FLUX_SRC_FLUX_MIGRATION_H_

#include <functional>
#include <memory>
#include <string>

#include "src/apps/app_instance.h"
#include "src/base/hash.h"
#include "src/cria/cria.h"
#include "src/flux/flux_agent.h"
#include "src/flux/forensics.h"
#include "src/flux/pairing.h"
#include "src/flux/pipeline.h"
#include "src/flux/trace.h"
#include "src/net/network.h"

namespace flux {

class ThreadPool;

struct MigrationConfig {
  // Modeled single-core throughputs for image handling (MB/s at the
  // Snapdragon S4 Pro baseline; scaled by each device's cpu_factor).
  double serialize_mbps = 120.0;
  double compress_mbps = 25.0;
  double decompress_mbps = 25.0;
  double restore_mbps = 35.0;
  // Fixed preparation work beyond the task-idler wait (trim + eglUnload).
  SimDuration prepare_fixed = Millis(140);
  // Reintegration fixed work (foreground, surface + first frame).
  SimDuration reintegrate_fixed = Millis(160);
  // Ablations.
  bool compress_image = true;
  bool wait_for_task_idler = true;
  // Extension beyond the paper's prototype (§3.4 future work): migrate
  // multi-process apps by checkpointing the whole process tree.
  bool enable_multiprocess = false;
  // Extension: post-copy memory transfer with adaptive pre-paging (the
  // optimization §4 proposes). Only the hot fraction of the image moves
  // before restore; the rest streams in the background, overlapped with the
  // restore and reintegration stages.
  bool post_copy = false;
  // Fraction of the compressed image pre-paged up front when post_copy is
  // on (the adaptively chosen working set).
  double post_copy_priority_fraction = 0.25;
  // Extension (the §4 overlap, taken further): chunked, pipelined
  // migration. The CRIA image is split into `pipeline_chunk_bytes` chunks;
  // serialize → compress (home) → wire → decompress → restore-apply
  // (guest) overlap per chunk, and chunk compression fans out over
  // `compress_threads` device cores (and, for real wall-clock wins, host
  // threads). Off by default so the paper-baseline figures are unchanged.
  bool pipelined = false;
  uint64_t pipeline_chunk_bytes = 256 * 1024;
  int compress_threads = 4;
  // Worker pool for chunk compression. Null (the default) uses the lazily
  // created process-shared pool of width `compress_threads`
  // (ThreadPool::Shared); tests and embedders may inject their own. The
  // pool must outlive the manager.
  ThreadPool* compress_pool = nullptr;
  // Extension: content-addressed delta transfer. With pipelined mode on,
  // every raw image chunk is hashed; a manifest handshake asks the guest
  // which hashes its ChunkCache already holds, and hits ship as 16-byte
  // refs instead of compressed bytes. Warm re-migrations (A->B->A) shrink
  // to the chunks that actually changed. Off by default: baseline payloads
  // and figures stay bit-for-bit unchanged.
  bool chunk_dedup = false;
  // Extension (DESIGN.md §10): iterative pre-copy. After preparation the
  // full image streams into the guest's chunk cache while the app keeps
  // running (and dirtying memory at its workload's rate); converging
  // rounds re-send only the chunks covering segments dirtied since the
  // previous cut; then a short stop-and-copy ships the final image, in
  // which every warmed chunk travels as a 16-byte ref. Implies pipelined
  // and chunk_dedup (the constructor forces both on). Off by default:
  // every baseline figure stays bit-for-bit unchanged.
  bool precopy = false;
  // Round budget before pre-copy gives up on convergence (forensics).
  int precopy_max_rounds = 8;
  // Bandwidth-aware termination: freeze once the estimated stop-and-copy
  // of the remaining dirty delta drops below this.
  SimDuration precopy_stop_copy_target = Millis(250);
  // A round must shrink the dirty set to at most this fraction of the
  // previous round's, or pre-copy declares non-convergence.
  double precopy_min_round_shrink = 0.85;
  // Test hook: runs once, right after the final stop-and-copy cut (models
  // a write racing the freeze; exercises the re-cut path that keeps such
  // writes from being silently dropped).
  std::function<void()> precopy_after_final_cut;
  // Extension (DESIGN.md §13): hostile-network modeling. A non-clean
  // profile frames every wire byte (src/net/frame.h, PROTOCOL.md) and runs
  // the real frame codec per chunk under the profile's loss, jitter and
  // rate-dip processes. The default (clean) profile leaves every transfer
  // path byte-identical to the baseline model — framing overhead is only
  // ever charged on non-clean profiles.
  NetProfile net_profile;
  // Decorrelates the per-migration loss/jitter draws and the recurring
  // outage phase across sweep points (XORed into the app-derived seed).
  uint64_t net_seed = 0;
  // Frame-stream shape when a profile is active (PROTOCOL.md §5).
  bool fec = true;
  uint32_t frame_payload_bytes = 16 * 1024;
  uint32_t fec_group_data_frames = 8;
  // Extension (DESIGN.md §13): chunk-resumable transfers. An interrupted
  // migration waits out a recoverable outage, re-offers the chunk manifest
  // (PROTOCOL.md §8), the guest acks what its cache already holds, and only
  // un-acked chunks retransmit. Implies pipelined + chunk_dedup (the
  // constructor forces both on). Off by default: interruption still aborts
  // to rollback, and every baseline figure stays bit-for-bit unchanged.
  bool resume = false;
  // Give up after this many resume handshakes (forensics, then rollback).
  int resume_max_attempts = 8;
  // An outage longer than this is treated as unrecoverable.
  SimDuration resume_wait_max = Seconds(30);
  // During long transfers the world keeps moving: the clock advances in
  // slices of at most `transfer_tick`, ticking both devices (task idlers,
  // due alarms) at each boundary.
  SimDuration transfer_tick = Millis(250);
  // Fault injection for tests: mutates the payload after checkpoint,
  // before transfer (models wire corruption; exercises restore rollback).
  std::function<void(Bytes&)> payload_fault;
  // Observability (OBSERVABILITY.md): when set, the migration emits phase
  // spans and counters into this tracer, and propagates it to both agents
  // (recorder, replayer, chunk cache, binder) and the network for the
  // duration of the manager's use. Null = no tracing (the default; the
  // instrumented sites cost nothing beyond a pointer test).
  Tracer* trace = nullptr;
  // Causal identity for this migration (telemetry.h). The coordinator
  // mints one at admission and passes it down; when left zero, Migrate()
  // mints its own deterministically from (package, home, guest, sim time).
  // Carried in the manifest/resume handshakes (PROTOCOL.md §7.1), stamped
  // into every span and flight event on both devices, and reported in
  // MigrationReport::trace_context. Not gated on tracing: the wire cost
  // of the handshake context field is charged whether or not a tracer is
  // attached, keeping the three-config byte identity.
  TraceContext trace_context;
  // Telemetry poll hook (TimeSeriesSampler::Poll): invoked at every
  // transfer-tick boundary while the migration advances the clock, so a
  // sampler sees mid-flight counter state on the single-migration path
  // (fleet runs drive sampling from the event scheduler instead). The
  // hook must be read-only with respect to simulated state — it runs on
  // the simulation path and anything it mutates breaks byte identity.
  std::function<void()> telemetry_poll;
};

// Wire-byte split of the pre-image data sync (SyncAppData). The APK
// verification advances the clock itself (it is a real protocol exchange);
// the data-directory delta sync only reports bytes, which the transfer
// paths charge to the wire afterwards. Keeping the two apart is what lets
// the pipelined schedule charge each exactly once.
struct AppDataSync {
  uint64_t apk_wire_bytes = 0;   // clock already advanced for these
  uint64_t data_wire_bytes = 0;  // still to be charged to the wire
  uint64_t total() const { return apk_wire_bytes + data_wire_bytes; }
};

// Delta-transfer accounting for one migration (chunk_dedup mode).
struct DedupStats {
  bool enabled = false;
  uint32_t chunk_count = 0;
  uint32_t ref_chunks = 0;     // shipped as 16-byte cache references
  uint32_t stored_chunks = 0;  // incompressible; shipped raw
  uint64_t ref_raw_bytes = 0;  // raw image bytes the guest cache covered
  // Hash manifest + availability bitmap, charged to the wire ahead of the
  // first image chunk (overlapped with the data-dir sync).
  uint64_t manifest_wire_bytes = 0;
  SimDuration manifest_rtt = 0;
};

// Frame-codec accounting for one migration under a non-clean NetProfile
// (every chunk runs encode -> lose -> FEC-reconstruct -> retransmit; byte
// counts include frame headers). All zero on the clean profile.
struct FrameWireStats {
  bool enabled = false;
  uint64_t frames_sent = 0;
  uint64_t data_frames = 0;
  uint64_t parity_frames = 0;
  uint64_t frames_lost = 0;
  uint64_t crc_errors = 0;        // losses that arrived corrupt
  uint64_t frames_recovered = 0;  // rebuilt from parity, no retransmit
  uint64_t frames_retransmitted = 0;
  uint64_t wire_bytes = 0;        // framed bytes on the air, incl. re-sends
  uint64_t lost_bytes = 0;
  uint64_t retransmit_bytes = 0;
};

// Resumable-transfer accounting (MigrationConfig::resume): every outage the
// migration rode out instead of rolling back.
struct ResumeStats {
  bool enabled = false;
  uint32_t interruptions = 0;     // outages observed mid-stream
  uint32_t attempts = 0;          // resume handshakes completed
  uint32_t chunks_acked = 0;      // manifest chunks the guest already held
  uint64_t handshake_wire_bytes = 0;
  uint64_t lost_bytes = 0;        // in-flight bytes an outage destroyed
  uint64_t retransmit_bytes = 0;  // bytes re-sent after resume handshakes
  SimDuration stalled = 0;        // total time waiting out outages
  std::vector<TimedInterval> stalls;  // one per stall (migration/resume spans)
};

struct RunningApp {
  Device* device = nullptr;
  Pid pid = kInvalidPid;          // the main (activity-hosting) process
  std::vector<Pid> all_pids;      // main first; helpers for multi-process apps
  Uid uid = -1;
  std::string package;
  std::string display_name;
  std::shared_ptr<ActivityThread> thread;

  static RunningApp FromInstance(AppInstance& app);
};

struct MigrationReport {
  std::string app;
  std::string home_device;
  std::string guest_device;
  bool success = false;
  std::string refusal_reason;

  // Stage intervals on the shared timeline (Figure 13).
  TimedInterval prepare;
  TimedInterval checkpoint;
  TimedInterval transfer;
  TimedInterval restore;
  TimedInterval reintegrate;
  // Sub-phase intervals (contained in the five above; not added to Total).
  // compress ⊂ checkpoint on the serial path but extends into transfer on
  // the pipelined path (chunk compression overlaps the wire); replay_window
  // ⊂ reintegrate; data_sync ⊂ transfer (serial) / the pipeline fill
  // (pipelined).
  TimedInterval compress;
  TimedInterval replay_window;
  TimedInterval data_sync;
  // Post-copy only: background streaming of the deferred image bytes,
  // overlapped with restore/reintegration; the tail (if any) extends the
  // total beyond reintegration.
  SimDuration background_transfer = 0;
  SimDuration background_tail = 0;     // portion not hidden by overlap
  uint64_t deferred_bytes = 0;
  SimDuration Total() const;
  // The user sees the target menu during prepare+checkpoint (§4).
  SimDuration UserPerceived() const;
  SimDuration PerceivedExcludingTransfer() const;

  // Byte accounting (Figure 15).
  uint64_t image_raw_bytes = 0;
  uint64_t image_compressed_bytes = 0;
  uint64_t log_bytes = 0;
  uint64_t data_sync_bytes = 0;  // data dirs + APK verification
  uint64_t total_wire_bytes = 0;

  CriaStats cria;
  ReplayStats replay;
  // Pipelined mode only: stage-overlap accounting (chunk counts, per-stage
  // busy/finish times, time saved vs strictly serial staging).
  PipelineStats pipeline;
  // chunk_dedup mode only.
  DedupStats dedup;
  // precopy mode only: round-by-round warm-up accounting.
  PrecopyStats precopy;
  // Non-clean net_profile only: per-frame wire outcomes.
  FrameWireStats frame_wire;
  // resume mode only: interruption/stall accounting.
  ResumeStats resume;
  // Whole-image digests for end-to-end identity checks: the raw CRIA image
  // as checkpointed at home and as reassembled on the guest.
  Hash128 image_hash;
  Hash128 restored_image_hash;

  // The causal context this migration ran under (adopted from
  // MigrationConfig::trace_context or minted at Migrate() entry); every
  // span and flight event of the migration carries the same value.
  TraceContext trace_context;

  // Where the app lives now.
  RunningApp migrated;

  // Set when something went wrong that did not abort the migration — some
  // replayed calls failed but the app is live on the guest. Aborted
  // migrations return an error Status instead; their forensics hang off
  // MigrationManager::last_forensics().
  std::shared_ptr<const ForensicReport> forensics;
};

class MigrationManager {
 public:
  MigrationManager(FluxAgent& home, FluxAgent& guest,
                   MigrationConfig config = {});
  ~MigrationManager();

  // Migrates a running app home -> guest. On success the home process is
  // gone and `report.migrated` points at the guest instance. On refusal the
  // app keeps running at home and `refusal_reason` is set (success=false
  // with an OK status).
  Result<MigrationReport> Migrate(const RunningApp& app,
                                  const AppSpec& spec);

  // The forensic report cut by the most recent failed (rolled-back or
  // partially failed) migration; null until something goes wrong. Snapshots
  // both devices' flight-recorder rings, the Status cause chain, the
  // tracer's counters and still-open spans, and the replay audit journal.
  std::shared_ptr<const ForensicReport> last_forensics() const {
    return last_forensics_;
  }

 private:
  Status Prepare(const RunningApp& app, MigrationReport& report);
  Result<Bytes> BuildPayload(const RunningApp& app, MigrationReport& report);
  // Pre-copy mode: runs the converging warm-up rounds (streaming chunks
  // into the guest cache while the app keeps dirtying memory), then
  // freezes the app and cuts the final stop-and-copy payload — re-cutting
  // if a write raced the cut. Fills report.precopy and folds the whole
  // window into the checkpoint interval.
  Result<Bytes> BuildPayloadPrecopy(const RunningApp& app, const AppSpec& spec,
                                    MigrationReport& report);
  Status Transfer(const RunningApp& app, const AppSpec& spec,
                  uint64_t payload_bytes, MigrationReport& report);
  // APK verification + data-directory delta sync into the pairing root;
  // returns the wire bytes it cost, split by whether the clock was already
  // advanced for them (shared by both transfer paths).
  Result<AppDataSync> SyncAppData(const RunningApp& app, const AppSpec& spec,
                                  MigrationReport& report);
  // Pipelined mode: data sync + chunked image streaming paced by the
  // overlapped stage schedule. Fills report.pipeline and re-stamps the
  // checkpoint/transfer intervals with the overlapped boundaries. Takes the
  // payload itself (not just its size): under a non-clean profile each
  // chunk's bytes run through the real frame codec.
  Status TransferPipelined(const RunningApp& app, const AppSpec& spec,
                           ByteSpan payload, MigrationReport& report);
  // What one resume handshake cost, beyond the loss-free schedule.
  struct ResumeOutcome {
    SimDuration extra = 0;    // stall + handshake + in-flight re-send time
    uint64_t wire_bytes = 0;  // handshake + re-send bytes on the air
  };
  // Rides out a connectivity loss at the current clock instant: waits for
  // the link to recover (devices keep ticking), then runs the resume
  // handshake — a framed manifest re-offer out, a cache-ack bitmap back
  // (PROTOCOL.md §8) — counting the `manifest` chunks the guest cache
  // already holds. `resend_wire` is the in-flight wire bytes the outage
  // destroyed; they re-send in full after the handshake. Fails with a
  // clean kUnavailable cause (`fail_msg`) when resume is off, the outage
  // is permanent, longer than resume_wait_max, or the attempt budget is
  // spent — the caller rolls back exactly as before resume existed.
  Result<ResumeOutcome> ResumeAfterOutage(WifiNetwork& wifi,
                                          const EffectiveLink& link,
                                          const std::vector<Hash128>& manifest,
                                          uint64_t resend_wire,
                                          const char* fail_msg,
                                          MigrationReport& report);
  Result<CriaRestoredApp> RestoreOnGuest(ByteSpan payload,
                                         MigrationReport& report,
                                         CallLog& log_out,
                                         HardwareSnapshot& hw_out);
  Status Reintegrate(CriaRestoredApp& restored, const CallLog& log,
                     const HardwareSnapshot& home_hw,
                     MigrationReport& report, ReplayAuditJournal& journal);

  // Freezes the failure evidence: both flight-recorder rings, the cause
  // chain, tracer counters + open spans, and the (already cross-checked)
  // replay audit journal.
  std::shared_ptr<ForensicReport> BuildForensics(const char* phase,
                                                 const Status& cause,
                                                 bool rolled_back,
                                                 ReplayAuditJournal journal,
                                                 const MigrationReport& report);

  // Advances the shared clock to `target` in transfer_tick slices, ticking
  // both devices at each boundary so their timers observe time passing.
  // With `watch` set, stops early and returns false if the network is down
  // at a slice boundary; returns true once `target` is reached.
  bool AdvanceWithTicks(SimTime target, WifiNetwork* watch = nullptr);

  // Stamps the finished report's phase intervals into config_.trace as
  // spans (no-op without a tracer). Post-hoc emission keeps the simulated
  // timeline byte-identical with tracing on or off.
  void EmitTraceSpans(const MigrationReport& report);

  // Worker pool for chunk compression: the injected
  // MigrationConfig::compress_pool, or the process-shared pool of the
  // configured width (spawning threads per manager is pure host overhead —
  // no simulated time involved).
  ThreadPool* CompressionPool();

  FluxAgent& home_;
  FluxAgent& guest_;
  MigrationConfig config_;
  // The active migration's causal context: adopted or minted at Migrate()
  // entry, cleared (with both recorders' and the tracer's ambient context)
  // on every exit path.
  TraceContext ctx_;
  // Absolute end of the overlapped decompress+restore stages, set by
  // TransferPipelined and consumed by RestoreOnGuest.
  SimTime pipeline_restore_deadline_ = 0;
  // Dedup mode: the raw-chunk hash manifest of the current payload, stored
  // by BuildPayload — the resume handshake re-offers exactly this list.
  std::vector<Hash128> payload_chunk_hashes_;
  // Resume mode only: a copy of the raw image, so the guest cache can take
  // each chunk as its wire window closes (chunk-granular delivery is what
  // the resume ack is about). Freed when the transfer completes.
  Bytes resume_raw_image_;
  // Pre-copy only: the modeled write load of the still-running app,
  // invoked from AdvanceWithTicks with each slice's duration. Installed
  // for the duration of the warm-up rounds; null (the default) leaves
  // every other path byte-identical.
  std::function<void(SimDuration)> precopy_mutator_;
  std::shared_ptr<const ForensicReport> last_forensics_;
};

}  // namespace flux

#endif  // FLUX_SRC_FLUX_MIGRATION_H_
