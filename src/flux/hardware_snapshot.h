// A snapshot of the home device's hardware-visible configuration, taken at
// checkpoint time. Adaptive Replay diffs it against the guest to decide what
// to rescale (volume ranges), substitute (GPS -> network positioning) or
// announce to the app (connectivity, display size).
#ifndef FLUX_SRC_FLUX_HARDWARE_SNAPSHOT_H_
#define FLUX_SRC_FLUX_HARDWARE_SNAPSHOT_H_

#include <string>

#include "src/base/archive.h"
#include "src/framework/system_context.h"

namespace flux {

struct HardwareSnapshot {
  std::string device_name;
  int max_music_volume = 15;
  bool has_gps = true;
  bool has_gyroscope = true;
  bool has_camera = true;
  bool has_vibrator = true;
  int display_width = 0;
  int display_height = 0;
  bool wifi_connected = true;
  std::string network_name;

  static HardwareSnapshot FromContext(const SystemContext& context) {
    HardwareSnapshot hw;
    hw.device_name = context.device_name;
    hw.max_music_volume = context.max_music_volume;
    hw.has_gps = context.has_gps;
    hw.has_gyroscope = context.has_gyroscope;
    hw.has_camera = context.has_camera;
    hw.has_vibrator = context.has_vibrator;
    hw.display_width = context.display.width_px;
    hw.display_height = context.display.height_px;
    hw.wifi_connected = context.connectivity.connected;
    hw.network_name = context.connectivity.network_name;
    return hw;
  }

  void Serialize(ArchiveWriter& out) const {
    out.PutString(device_name);
    out.PutI64(max_music_volume);
    out.PutBool(has_gps);
    out.PutBool(has_gyroscope);
    out.PutBool(has_camera);
    out.PutBool(has_vibrator);
    out.PutI64(display_width);
    out.PutI64(display_height);
    out.PutBool(wifi_connected);
    out.PutString(network_name);
  }

  static Result<HardwareSnapshot> Deserialize(ArchiveReader& in) {
    HardwareSnapshot hw;
    int64_t scratch = 0;
    FLUX_RETURN_IF_ERROR(in.GetString(hw.device_name));
    FLUX_RETURN_IF_ERROR(in.GetI64(scratch));
    hw.max_music_volume = static_cast<int>(scratch);
    FLUX_RETURN_IF_ERROR(in.GetBool(hw.has_gps));
    FLUX_RETURN_IF_ERROR(in.GetBool(hw.has_gyroscope));
    FLUX_RETURN_IF_ERROR(in.GetBool(hw.has_camera));
    FLUX_RETURN_IF_ERROR(in.GetBool(hw.has_vibrator));
    FLUX_RETURN_IF_ERROR(in.GetI64(scratch));
    hw.display_width = static_cast<int>(scratch);
    FLUX_RETURN_IF_ERROR(in.GetI64(scratch));
    hw.display_height = static_cast<int>(scratch);
    FLUX_RETURN_IF_ERROR(in.GetBool(hw.wifi_connected));
    FLUX_RETURN_IF_ERROR(in.GetString(hw.network_name));
    return hw;
  }
};

}  // namespace flux

#endif  // FLUX_SRC_FLUX_HARDWARE_SNAPSHOT_H_
