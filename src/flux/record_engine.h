// Selective Record (§3.2).
//
// A TransactionObserver on the device's Binder driver. For every call a
// tracked app makes to a decorated service method, the engine:
//   1. evaluates the method's @drop clauses, pruning prior log entries whose
//      effects the new call neutralizes (matching @if/@elif signatures on
//      named arguments, scoped to the same target node);
//   2. appends the call to the app's log if the rule records it — unless the
//      call was pure negation ("this" in a drop list alongside other
//      methods, and a prior call to one of those other methods was dropped);
//   3. charges the (asynchronous, near-zero) recording cost to the clock.
//
// Undecorated calls are ignored entirely — that is the "selective": reads
// and stateless calls never enter the log. A full-record mode exists for the
// ablation benchmark.
#ifndef FLUX_SRC_FLUX_RECORD_ENGINE_H_
#define FLUX_SRC_FLUX_RECORD_ENGINE_H_

#include <map>
#include <string>

#include "src/aidl/record_rules.h"
#include "src/binder/binder_driver.h"
#include "src/flux/call_log.h"

namespace flux {

struct RecordStats {
  uint64_t transactions_seen = 0;   // all calls by tracked apps
  uint64_t calls_recorded = 0;
  uint64_t calls_dropped_stale = 0; // pruned by @drop
  uint64_t calls_suppressed = 0;    // negations never recorded
};

class RecordEngine : public TransactionObserver {
 public:
  // The engine consults the device's compiled rule set; it must outlive the
  // engine. Call BinderDriver::AddObserver(engine) to arm it.
  explicit RecordEngine(const RecordRuleSet* rules) : rules_(rules) {}

  // ----- app tracking -----
  void TrackApp(Pid pid, std::string package);
  void UntrackApp(Pid pid);
  bool IsTracked(Pid pid) const { return apps_.count(pid) > 0; }
  // Replay must not re-record its own calls (§3.1 migration-in).
  void PauseRecording(Pid pid);
  void ResumeRecording(Pid pid);

  CallLog* LogFor(Pid pid);
  const CallLog* LogFor(Pid pid) const;
  // Detaches the log (for checkpointing).
  Result<CallLog> TakeLog(Pid pid);
  void InstallLog(Pid pid, CallLog log);

  const RecordStats& stats() const { return stats_; }

  // Ablation: record every observed call, ignore @drop pruning.
  void set_full_record_mode(bool full) { full_record_ = full; }

  // Simulated cost per recorded call (asynchronous enqueue on the app side).
  void set_record_cost(SimDuration cost) { record_cost_ = cost; }

  // ----- TransactionObserver -----
  void OnTransaction(const TransactionInfo& info) override;

  // Attaches to a driver (convenience; remember to detach on destruction).
  void Arm(BinderDriver& driver);
  void Disarm(BinderDriver& driver);

 private:
  struct TrackedApp {
    std::string package;
    bool paused = false;
    CallLog log;
  };

  // True if `entry` matches the new call under signature `sig_args`
  // (every named arg listed equal between the two).
  static bool SignatureMatches(const CallRecord& entry,
                               const TransactionInfo& info,
                               const std::vector<std::string>& sig_args);

  const RecordRuleSet* rules_;
  std::map<Pid, TrackedApp> apps_;
  RecordStats stats_;
  bool full_record_ = false;
  SimDuration record_cost_ = Micros(4);
  SimClock* clock_ = nullptr;

 public:
  // Optional: charge record costs to this clock.
  void set_clock(SimClock* clock) { clock_ = clock; }
};

}  // namespace flux

#endif  // FLUX_SRC_FLUX_RECORD_ENGINE_H_
