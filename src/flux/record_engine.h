// Selective Record (§3.2).
//
// A TransactionObserver on the device's Binder driver. For every call a
// tracked app makes to a decorated service method, the engine:
//   1. evaluates the method's @drop clauses, pruning prior log entries whose
//      effects the new call neutralizes (matching @if/@elif signatures on
//      named arguments, scoped to the same target node);
//   2. appends the call to the app's log if the rule records it — unless the
//      call was pure negation ("this" in a drop list alongside other
//      methods, and a prior call to one of those other methods was dropped);
//   3. charges the (asynchronous, near-zero) recording cost to the clock.
//
// Undecorated calls are ignored entirely — that is the "selective": reads
// and stateless calls never enter the log. A full-record mode exists for the
// ablation benchmark.
//
// The transaction path is a compiled fast lane: rule dispatch is one hash
// probe on the interned (interface_id, method_id) pair, drop clauses come
// pre-resolved (CompiledDropClause), pruning visits only the matching
// (interface, node) bucket of the log, and appending shares the observed
// parcels copy-on-write — no allocation and no string comparisons on calls
// that record cleanly.
#ifndef FLUX_SRC_FLUX_RECORD_ENGINE_H_
#define FLUX_SRC_FLUX_RECORD_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "src/aidl/record_rules.h"
#include "src/binder/binder_driver.h"
#include "src/flux/call_log.h"
#include "src/flux/flight_recorder.h"
#include "src/flux/trace.h"

namespace flux {

struct RecordStats {
  uint64_t transactions_seen = 0;   // all calls by tracked apps
  uint64_t calls_recorded = 0;
  uint64_t calls_dropped_stale = 0; // pruned by @drop
  uint64_t calls_suppressed = 0;    // negations never recorded
};

class RecordEngine : public TransactionObserver {
 public:
  // The engine consults the device's compiled rule set; it must outlive the
  // engine. Call BinderDriver::AddObserver(engine) to arm it.
  explicit RecordEngine(const RecordRuleSet* rules) : rules_(rules) {}

  // ----- app tracking -----
  // Re-tracking an already-tracked pid keeps its existing log (an app can
  // be re-managed after a restore without losing recorded state).
  void TrackApp(Pid pid, std::string package);
  void UntrackApp(Pid pid);
  bool IsTracked(Pid pid) const { return apps_.count(pid) > 0; }
  // Replay must not re-record its own calls (§3.1 migration-in).
  void PauseRecording(Pid pid);
  void ResumeRecording(Pid pid);

  CallLog* LogFor(Pid pid);
  const CallLog* LogFor(Pid pid) const;
  // Detaches the log (for checkpointing).
  Result<CallLog> TakeLog(Pid pid);
  void InstallLog(Pid pid, CallLog log);

  const RecordStats& stats() const { return stats_; }

  // Ablation: record every observed call, ignore @drop pruning.
  void set_full_record_mode(bool full) { full_record_ = full; }

  // Simulated cost per recorded call (asynchronous enqueue on the app side).
  void set_record_cost(SimDuration cost) { record_cost_ = cost; }

  // Mirrors RecordStats increments into record.* trace counters (null
  // detaches); cached pointers keep the transaction fast lane allocation-
  // and lookup-free.
  void set_tracer(Tracer* tracer);

  // Flight-recorder events for app-tracking lifecycle transitions
  // (record.tracked/untracked/paused/resumed); the per-transaction fast
  // lane emits nothing.
  void set_flight_recorder(FlightRecorder* recorder) {
    flight_recorder_ = recorder;
  }

  // ----- TransactionObserver -----
  void OnTransaction(const TransactionInfo& info) override;

  // Attaches to a driver (convenience; remember to detach on destruction).
  void Arm(BinderDriver& driver);
  void Disarm(BinderDriver& driver);

 private:
  struct TrackedApp {
    std::string package;
    bool paused = false;
    CallLog log;
  };

  const RecordRuleSet* rules_;
  std::map<Pid, TrackedApp> apps_;
  RecordStats stats_;
  bool full_record_ = false;
  SimDuration record_cost_ = Micros(4);
  SimClock* clock_ = nullptr;
  // New-call signature values, resolved once per drop clause and reused for
  // every candidate entry; member scratch so OnTransaction never allocates
  // after warm-up.
  std::vector<const ParcelValue*> sig_values_;
  TraceCounter* trace_seen_ = nullptr;
  TraceCounter* trace_recorded_ = nullptr;
  TraceCounter* trace_pruned_ = nullptr;
  TraceCounter* trace_suppressed_ = nullptr;
  TraceHistogram* hist_txn_cost_ = nullptr;
  FlightRecorder* flight_recorder_ = nullptr;

 public:
  // Optional: charge record costs to this clock.
  void set_clock(SimClock* clock) { clock_ = clock; }
};

}  // namespace flux

#endif  // FLUX_SRC_FLUX_RECORD_ENGINE_H_
