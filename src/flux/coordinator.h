// Fleet-scale migration coordinator (DESIGN.md §11).
//
// One MigrationManager moves one app between one device pair. At fleet
// scale — thousands of paired devices, many migrations in flight — someone
// has to decide *when* each migration may start and *where* it should land.
// The coordinator is that admission/placement service, modeled after
// flux-core's broker: content-addressed state (the per-device ChunkCache
// fed by the dedup manifest probe) drives placement, and a FIFO admission
// queue with per-device exclusivity and a global concurrency cap drives
// scheduling.
//
// The fleet itself is a lightweight model, not 10k full Devices: a
// FleetDevice is a name, an AP attachment, a CPU factor, and a real
// ChunkCache whose entries stand in for the device's content-addressed
// store (each modeled 256 KiB image chunk is keyed by the FluxHash128 of a
// small per-(app, chunk, generation) seed string — real hashes, really
// verified, just not 256 KiB of payload per entry). Everything is driven by
// the sharded EventScheduler: admission retries, stage completions,
// dirty-write bursts, and the ContendedFabric's transfer completions are
// all timed wake-ups, so an idle fleet costs nothing per virtual second.
//
// Migration lifecycle (each edge is one scheduler event):
//
//   Request ── queue (FIFO, head-of-line skip past blocked entries)
//      └─ Admit: home+guest free, global slot free. Placement picks the
//         paired candidate with the warmest cache (dedup manifest probe:
//         ChunkCache::HasValid per current chunk hash), tiebreak by AP
//         load, then device index.
//      └─ cpu_pre: prepare + checkpoint serialize + compress on the home
//         CPU (dirty bursts keep mutating chunks until the cut).
//      └─ wire: the cold-chunk bytes flow through the ContendedFabric;
//         concurrent flows through a shared AP stretch each other.
//      └─ cpu_post: decompress + restore on the guest CPU + reintegrate.
//      └─ Complete: caches warmed on both sides, app re-homed, devices
//         freed, next queue entries admitted.
//
// Pairing storms (N devices booting and pairing at once) run through the
// same queue machinery with their own concurrency cap and a framework-sync
// flow sized by the paper's pairing constants; completion seeds the guest's
// cache with the partner's app chunks, which is what makes later placement
// prefer it.
#ifndef FLUX_SRC_FLUX_COORDINATOR_H_
#define FLUX_SRC_FLUX_COORDINATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <unordered_map>
#include <vector>

#include "src/base/event_queue.h"
#include "src/base/hash.h"
#include "src/base/sim_clock.h"
#include "src/flux/chunk_cache.h"
#include "src/flux/trace.h"
#include "src/net/contended_link.h"

namespace flux {

using FleetDeviceId = uint32_t;
using FleetAppId = uint32_t;
inline constexpr FleetDeviceId kNoFleetDevice = ~FleetDeviceId{0};

struct FleetDeviceSpec {
  std::string name;
  ContendedFabric::ApId ap = 0;
  // Station peak goodput (the per-device side of bandwidth contention: a
  // flow never exceeds the slower endpoint's peak, however idle the AP is).
  uint64_t link_peak_bps = 30'000'000;
  double cpu_factor = 1.0;
  // Budget of the modeled content-addressed store. Entries are ~tens of
  // bytes (seed strings), so this bounds entry count, not modeled bytes.
  uint64_t cache_budget_bytes = 256 * 1024;
};

struct FleetAppSpec {
  std::string name;
  FleetDeviceId home = 0;
  uint64_t image_bytes = 32 * 1024 * 1024;
  // Write load while the app runs; between migrations it accrues lazily,
  // during the pre-cut window it is applied by dirty-burst wake-ups.
  uint64_t dirty_bytes_per_s = 256 * 1024;
  // Fraction of the image the write load cycles over (the hot set).
  double hot_fraction = 0.25;
  // Wire bytes per raw byte for chunks the guest cache is missing.
  double compress_ratio = 0.45;
};

struct CoordinatorConfig {
  // Global admission slots for migrations / pairings.
  int max_concurrent_migrations = 32;
  int max_concurrent_pairings = 16;
  // Modeled chunk granularity; matches the dedup path's default.
  uint64_t chunk_bytes = kChunkCacheChunkBytes;
  // Modeled single-core stage throughputs (MB/s at cpu_factor 1.0) and
  // fixed costs — the MigrationConfig numbers.
  double serialize_mbps = 120.0;
  double compress_mbps = 25.0;
  double decompress_mbps = 25.0;
  double restore_mbps = 35.0;
  SimDuration prepare_fixed = Millis(140);
  SimDuration reintegrate_fixed = Millis(160);
  // Pairing framework sync: compressed wire bytes per pairing (the paper's
  // ~56 MB at scale 1.0) and the scale knob.
  uint64_t pairing_wire_bytes = 56 * 1024 * 1024;
  double pairing_scale = 0.02;
  // Cadence of dirty-write bursts while a migration's pre-cut window runs.
  SimDuration dirty_burst_period = Millis(500);
  // Observability: fleet.* counters, fleet.queue_wait_us / fleet.concurrency
  // histograms, coordinator/* spans. Null = no tracing.
  Tracer* trace = nullptr;
  // Per-migration coordinator/* spans can dominate Tracer memory at 100k
  // fleet scale; off keeps counters+histograms only.
  bool trace_spans = true;
};

// One finished migration, for bench tables.
struct FleetMigrationRecord {
  FleetAppId app = 0;
  FleetDeviceId home = 0;
  FleetDeviceId guest = 0;
  SimTime submitted = 0;
  SimTime admitted = 0;
  SimTime completed = 0;
  uint64_t wire_bytes = 0;
  uint32_t chunks = 0;
  uint32_t warm_chunks = 0;  // shipped as refs thanks to the guest cache
  // Causal trace context minted at admission (telemetry.h). Every
  // coordinator/* span for this migration carries it, so a fleet record
  // stitches straight into the Chrome trace's flow chain.
  TraceContext ctx;
  SimDuration queue_wait() const {
    return static_cast<SimDuration>(admitted - submitted);
  }
};

class MigrationCoordinator {
 public:
  // `scheduler` (and its clock) must outlive the coordinator. Device
  // wake-ups land on shard (device index % scheduler->shards()).
  MigrationCoordinator(EventScheduler* scheduler, ContendedFabric* fabric,
                       CoordinatorConfig config = {});
  ~MigrationCoordinator();

  MigrationCoordinator(const MigrationCoordinator&) = delete;
  MigrationCoordinator& operator=(const MigrationCoordinator&) = delete;

  FleetDeviceId AddDevice(const FleetDeviceSpec& spec);
  FleetAppId AddApp(const FleetAppSpec& spec);
  size_t device_count() const { return devices_.size(); }

  // Marks `a` and `b` paired immediately (fleet bootstrap without storms).
  void MarkPaired(FleetDeviceId a, FleetDeviceId b);
  bool IsPaired(FleetDeviceId a, FleetDeviceId b) const;

  // Queues a pairing (framework sync through the contended fabric; seeds
  // b's cache with a's app chunks on completion). Returns false for
  // unknown/identical devices.
  bool RequestPairing(FleetDeviceId a, FleetDeviceId b);

  // Queues a migration of `app` off its current home. `guest` may be
  // kNoFleetDevice: placement then picks the warmest-cache paired
  // candidate at admission time. Returns false (and counts a refusal) if
  // the app is unknown, already migrating, or has no paired candidate.
  bool RequestMigration(FleetAppId app, FleetDeviceId guest = kNoFleetDevice);

  // Where `app` currently lives / whether it is queued or in flight.
  FleetDeviceId AppHome(FleetAppId app) const;
  bool AppMigrating(FleetAppId app) const;
  bool DeviceBusy(FleetDeviceId device) const;

  // Fleet results & gauges.
  const std::vector<FleetMigrationRecord>& completed() const {
    return completed_;
  }
  size_t queued_migrations() const { return migration_queue_.size(); }
  size_t inflight_migrations() const {
    return static_cast<size_t>(active_migrations_);
  }
  size_t inflight_pairings() const {
    return static_cast<size_t>(active_pairings_);
  }
  size_t pairings_completed() const { return pairings_completed_; }
  int peak_concurrency() const { return peak_concurrency_; }

  // Trace contexts of every admitted, still in-flight migration (queued
  // entries have no context yet — it is minted at admission). Feed for
  // TimeSeriesSampler::SetContextProvider, so each sample window knows
  // which causal chains were live when it was cut. Order is the
  // deterministic admission-table order, not sorted; the time-series JSON
  // exporter canonicalizes.
  std::vector<TraceContext> InflightContexts() const;

 private:
  struct FleetDevice;
  struct FleetApp;
  struct PendingMigration;
  struct PendingPairing;

  SimTime now() const { return scheduler_->clock().now(); }
  uint32_t ShardOf(FleetDeviceId device) const;

  // Content-addressed chunk identity for (app, chunk index, generation):
  // the seed string doubles as the stored cache payload.
  static std::string ChunkSeed(const FleetApp& app, uint32_t chunk,
                               uint32_t generation);
  static Hash128 ChunkHash(const std::string& seed);
  uint32_t ChunkCount(const FleetApp& app) const;

  // Applies the app's write load for the wall of time since its last
  // mutation point: bumps generations round-robin over the hot set.
  void AccrueDirt(FleetApp& app, SimTime upto);

  // Admission sweep: admits every eligible queue entry in FIFO order
  // (blocked entries are skipped, not head-of-line blocking the fleet).
  void PumpQueues();
  void AdmitMigration(PendingMigration req, FleetDeviceId guest);
  void AdmitPairing(PendingPairing req);

  // Placement: warmest cache wins (dedup manifest probe over the app's
  // current chunk hashes), tiebreak lower AP load then lower id. Returns
  // kNoFleetDevice when no paired candidate is free.
  FleetDeviceId PlaceGuest(const FleetApp& app);

  // Stage transitions (each runs as a scheduler event). The per-migration
  // heavy ones — checkpoint cut, completion, dirty bursts — are *staged*
  // events (DESIGN.md §12): the run phase executes on the home/guest
  // device's shard, touching only state this migration owns (its app, its
  // two busy devices' caches) plus relaxed-atomic counters, so different
  // migrations' cuts hash and probe in parallel; fabric flows, queue pumps,
  // re-homing, and records happen in the serial commit phase. Everything
  // else (pump, settles, pairings, arrivals) stays a barrier event.
  void OnCheckpointCut(uint64_t migration_key);        // staged run
  void OnCheckpointCutCommit(uint64_t migration_key);  // serial commit
  void OnFlowsSettled();
  void OnMigrationDone(uint64_t migration_key);        // staged run
  void OnMigrationDoneCommit(uint64_t migration_key);  // serial commit
  void OnPairingFlowDone(uint64_t pairing_key);
  void FinishPairing(uint64_t pairing_key);
  void ScheduleFabricWakeup();
  void DirtyBurst(uint64_t migration_key);

  SimDuration CpuCost(double cpu_factor, uint64_t bytes, double mbps) const;

  EventScheduler* scheduler_;
  ContendedFabric* fabric_;
  CoordinatorConfig config_;

  std::vector<std::unique_ptr<FleetDevice>> devices_;
  std::vector<std::unique_ptr<FleetApp>> apps_;

  std::deque<uint64_t> migration_queue_;  // keys into pending_migrations_
  std::deque<uint64_t> pairing_queue_;
  // Live in-flight + queued state, keyed by a monotonically increasing id
  // (stable across vector growth; events close over keys, not pointers).
  std::unordered_map<uint64_t, std::unique_ptr<PendingMigration>>
      pending_migrations_;
  // Contexts of admitted migrations, keyed like pending_migrations_. A side
  // table so InflightContexts() — called once per telemetry sample — walks
  // only the <= max_concurrent_migrations admitted entries instead of the
  // whole pending map, where queued (context-less) entries dominate at
  // fleet scale. Kept contiguous (swap-and-pop erase via the key index) so
  // the per-sample walk is a flat scan, not a node-pointer chase.
  std::vector<std::pair<uint64_t, TraceContext>> admitted_ctxs_;
  std::unordered_map<uint64_t, size_t> admitted_ctx_index_;
  std::unordered_map<uint64_t, std::unique_ptr<PendingPairing>>
      pending_pairings_;
  std::unordered_map<ContendedFabric::FlowId, uint64_t> flow_to_migration_;
  std::unordered_map<ContendedFabric::FlowId, uint64_t> flow_to_pairing_;
  uint64_t next_key_ = 1;

  int active_migrations_ = 0;
  int active_pairings_ = 0;
  int peak_concurrency_ = 0;
  size_t pairings_completed_ = 0;
  EventId fabric_wakeup_;

  std::vector<FleetMigrationRecord> completed_;

  // Cached trace handles (null without a tracer).
  TraceCounter* ctr_requested_ = nullptr;
  TraceCounter* ctr_admitted_ = nullptr;
  TraceCounter* ctr_completed_ = nullptr;
  TraceCounter* ctr_refused_ = nullptr;
  TraceCounter* ctr_pairings_ = nullptr;
  TraceCounter* ctr_probes_ = nullptr;
  TraceCounter* ctr_warm_chunks_ = nullptr;
  TraceCounter* ctr_wire_bytes_ = nullptr;
  TraceCounter* ctr_dirty_bursts_ = nullptr;
  TraceHistogram* hist_queue_wait_ = nullptr;
  TraceHistogram* hist_concurrency_ = nullptr;
};

}  // namespace flux

#endif  // FLUX_SRC_FLUX_COORDINATOR_H_
