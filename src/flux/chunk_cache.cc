#include "src/flux/chunk_cache.h"

#include <algorithm>

namespace flux {

void ChunkCache::set_tracer(Tracer* tracer) {
#if FLUX_TRACE_ENABLED
  trace_hits_ = tracer ? tracer->counter(trace_names::kCacheHits) : nullptr;
  trace_misses_ =
      tracer ? tracer->counter(trace_names::kCacheMisses) : nullptr;
  trace_insertions_ =
      tracer ? tracer->counter(trace_names::kCacheInsertions) : nullptr;
  trace_refreshes_ =
      tracer ? tracer->counter(trace_names::kCacheRefreshes) : nullptr;
  trace_evictions_ =
      tracer ? tracer->counter(trace_names::kCacheEvictions) : nullptr;
  trace_verify_failures_ =
      tracer ? tracer->counter(trace_names::kCacheVerifyFailures) : nullptr;
#else
  (void)tracer;
#endif
}

void ChunkCache::Insert(const Hash128& hash, ByteSpan content) {
  auto it = index_.find(hash);
  if (it != index_.end()) {
    // Already cached: refresh recency (and content, in case the entry was
    // poisoned since — Insert is the one writer that knows good bytes).
    lru_.splice(lru_.begin(), lru_, it->second);
    if (it->second->content.size() != content.size() ||
        !std::equal(content.begin(), content.end(),
                    it->second->content.begin())) {
      bytes_ -= it->second->content.size();
      it->second->content.assign(content.begin(), content.end());
      bytes_ += content.size();
    }
    ++stats_.refreshes;
    FLUX_TRACE_COUNTER_ADD(trace_refreshes_, 1);
    EvictToBudget();
    return;
  }
  if (content.size() > budget_bytes_) {
    return;
  }
  lru_.push_front(Entry{hash, Bytes(content.begin(), content.end())});
  index_[hash] = lru_.begin();
  bytes_ += content.size();
  ++stats_.insertions;
  FLUX_TRACE_COUNTER_ADD(trace_insertions_, 1);
  EvictToBudget();
}

bool ChunkCache::HasValid(const Hash128& hash) {
  auto it = index_.find(hash);
  if (it == index_.end()) {
    ++stats_.misses;
    FLUX_TRACE_COUNTER_ADD(trace_misses_, 1);
    return false;
  }
  const Bytes& content = it->second->content;
  if (FluxHash128(ByteSpan(content.data(), content.size())) != hash) {
    // Poisoned entry: drop it so the peer ships the full chunk.
    ++stats_.verify_failures;
    FLUX_TRACE_COUNTER_ADD(trace_verify_failures_, 1);
    FLUX_EVENT(flight_recorder_, flight_events::kSubCache,
               flight_events::kCacheVerifyFailure, EventSeverity::kWarning,
               content.size(), index_.size());
    bytes_ -= content.size();
    lru_.erase(it->second);
    index_.erase(it);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  FLUX_TRACE_COUNTER_ADD(trace_hits_, 1);
  return true;
}

bool ChunkCache::Fetch(const Hash128& hash, Bytes& out) {
  if (!HasValid(hash)) {
    return false;
  }
  out = lru_.front().content;  // HasValid bumped it most-recent
  return true;
}

bool ChunkCache::Remove(const Hash128& hash) {
  auto it = index_.find(hash);
  if (it == index_.end()) {
    return false;
  }
  bytes_ -= it->second->content.size();
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

void ChunkCache::Clear() {
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

void ChunkCache::set_budget_bytes(uint64_t budget_bytes) {
  budget_bytes_ = budget_bytes;
  EvictToBudget();
}

bool ChunkCache::PoisonForTest(const Hash128& hash) {
  auto it = index_.find(hash);
  if (it == index_.end() || it->second->content.empty()) {
    return false;
  }
  it->second->content[0] ^= 0x01;
  return true;
}

std::vector<Hash128> ChunkCache::Keys() const {
  std::vector<Hash128> keys;
  keys.reserve(lru_.size());
  for (const Entry& entry : lru_) {
    keys.push_back(entry.hash);
  }
  return keys;
}

void ChunkCache::EvictToBudget() {
  while (bytes_ > budget_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.content.size();
    index_.erase(victim.hash);
    lru_.pop_back();
    ++stats_.evictions;
    FLUX_TRACE_COUNTER_ADD(trace_evictions_, 1);
  }
}

}  // namespace flux
