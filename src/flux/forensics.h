// Failure forensics (OBSERVABILITY.md): the report cut when a migration
// rolls back or a replay call fails.
//
// The flight recorder retains the last N structured events per device; this
// module freezes that evidence the moment something goes wrong. A forensic
// report bundles, for one failed (or partially failed) migration:
//  - both devices' flight-recorder rings, resolved to strings;
//  - the Status cause chain (src/base/result.h) from the failure site up;
//  - the tracer's still-open spans and a full counter dump, when a tracer
//    was attached;
//  - the Adaptive Replay audit journal: one entry per replayed call with
//    its outcome (verbatim / proxied / skipped / adapted / failed) and the
//    proxy's adaptation note, cross-checked against the frozen record log.
//
// Reports render as JSON (stable schema, validated by
// scripts/check_forensics.py) and as human-readable text.
#ifndef FLUX_SRC_FLUX_FORENSICS_H_
#define FLUX_SRC_FLUX_FORENSICS_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/base/sim_clock.h"
#include "src/flux/flight_recorder.h"

namespace flux {

class CallLog;
class Tracer;

// ----- replay audit journal -----

// How one recorded call fared during Adaptive Replay.
enum class ReplayOutcome : uint8_t {
  kVerbatim = 0,  // re-issued unchanged
  kProxied = 1,   // handled by a @replayproxy, no adaptation needed
  kSkipped = 2,   // proxy decided the call is moot on the guest
  kAdapted = 3,   // proxy modified the call for the guest
  kFailed = 4,
};

std::string_view ReplayOutcomeName(ReplayOutcome outcome);

struct ReplayAuditEntry {
  uint64_t index = 0;  // position in the replayed log
  uint64_t seq = 0;    // CallRecord::seq from the frozen log
  std::string interface;
  std::string method;
  ReplayOutcome outcome = ReplayOutcome::kVerbatim;
  std::string detail;  // adaptation note or failure status
};

struct ReplayAuditJournal {
  std::vector<ReplayAuditEntry> entries;
  // Cross-check against the frozen record log (CrossCheckJournal): how many
  // calls the log holds, and any discrepancies found.
  uint64_t log_calls = 0;
  std::vector<std::string> mismatches;
};

// Verifies the journal covers the frozen log call-for-call: same count,
// same interface/method at each index. Fills `journal.log_calls` and
// appends human-readable discrepancies to `journal.mismatches` (none on a
// clean pass). A truncated journal (replay aborted mid-log) reports the
// uncovered tail as a single mismatch.
void CrossCheckJournal(ReplayAuditJournal& journal, const CallLog& log);

// ----- forensic report -----

// One link of a Status cause chain, outermost first.
struct ForensicCause {
  std::string code;
  std::string message;
};

struct ForensicReport {
  std::string app;
  std::string home_device;
  std::string guest_device;
  // Which migration phase failed ("prepare", "checkpoint", "transfer",
  // "restore", "reintegrate", or "replay" for a partial replay on an
  // otherwise successful migration).
  std::string failure_phase;
  SimTime captured_at = 0;
  bool rolled_back = false;
  // The failed migration's causal context (telemetry.h); zero when the
  // report was cut outside any migration. The same value stamps the
  // per-event "ctx" fields below, so a report cross-references straight
  // into the Chrome trace's flow chain.
  TraceContext trace_context;

  // The failure Status and its cause chain, outermost first.
  std::vector<ForensicCause> cause_chain;

  // Flight-recorder snapshots from both devices, oldest first.
  std::vector<FlightEventView> home_events;
  std::vector<FlightEventView> guest_events;

  // Tracer state at capture time (empty without a tracer).
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::string> open_spans;

  ReplayAuditJournal replay_journal;
};

// Builds the cause-chain rows from a Status (no-op for OK).
std::vector<ForensicCause> FlattenCauseChain(const Status& status);

// Stable JSON rendering (schema checked by scripts/check_forensics.py).
void WriteForensicReport(const ForensicReport& report, std::ostream& out);
std::string ForensicReportJson(const ForensicReport& report);

// Human-readable rendering for terminals and test logs.
std::string ForensicReportText(const ForensicReport& report);

}  // namespace flux

#endif  // FLUX_SRC_FLUX_FORENSICS_H_
