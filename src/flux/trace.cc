#include "src/flux/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace flux {
namespace {

// Process-wide thread ordinals: the first thread that records a span gets 0,
// the next 1, … Stable across Tracers so a merged export keeps one row per
// real thread.
int ThisThreadOrdinal() {
  static std::atomic<int> next{0};
  thread_local int ord = next.fetch_add(1, std::memory_order_relaxed);
  return ord;
}

// Per-thread RAII nesting depth (global, not per-tracer: a thread drives one
// migration at a time, and cross-tracer nesting is not meaningful).
thread_local int g_span_depth = 0;

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string TraceContext::ToHex() const {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64 "%016" PRIx64, hi, lo);
  return std::string(buf);
}

void TraceHistogram::Snapshot::Merge(const Snapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (int i = 0; i < kBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

double TraceHistogram::Snapshot::Percentile(double p) const {
  if (count == 0) {
    return 0.0;
  }
  p = std::min(std::max(p, 0.0), 100.0);
  const double rank = p / 100.0 * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) {
      continue;
    }
    const uint64_t next = cumulative + buckets[b];
    if (static_cast<double>(next) >= rank) {
      // Bucket b holds values in [2^(b-1), 2^b); bucket 0 holds only 0.
      if (b == 0) {
        return 0.0;
      }
      const double lo = static_cast<double>(1ull << (b - 1));
      double hi = b < 63 ? static_cast<double>(1ull << b)
                         : static_cast<double>(max);
      hi = std::min(hi, static_cast<double>(max));
      const double frac =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[b]);
      return lo + std::min(std::max(frac, 0.0), 1.0) * (hi - lo);
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

TraceHistogram::Snapshot TraceHistogram::Take() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

TraceCounter* Tracer::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<TraceCounter>())
             .first;
  }
  return it->second.get();
}

TraceHistogram* Tracer::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<TraceHistogram>())
             .first;
  }
  return it->second.get();
}

void Tracer::set_context(const TraceContext& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  context_ = ctx;
}

TraceContext Tracer::context() const {
  std::lock_guard<std::mutex> lock(mu_);
  return context_;
}

size_t Tracer::OpenSpan(std::string_view name) {
  TraceSpanRecord rec;
  rec.name = std::string(name);
  rec.begin = clock_->now();
  rec.end = rec.begin;
  rec.thread_ord = ThisThreadOrdinal();
  rec.depth = g_span_depth++;
  rec.open = true;
  std::lock_guard<std::mutex> lock(mu_);
  rec.ctx = context_;
  spans_.push_back(std::move(rec));
  return spans_.size();  // slot + 1 so 0 stays "no token"
}

void Tracer::CloseSpan(size_t token) {
  const SimTime now = clock_->now();
  --g_span_depth;
  std::lock_guard<std::mutex> lock(mu_);
  spans_[token - 1].end = now;
  spans_[token - 1].open = false;
}

void Tracer::EmitSpan(std::string_view name, SimTime begin, SimTime end,
                      const TraceContext& ctx) {
  TraceSpanRecord rec;
  rec.name = std::string(name);
  rec.begin = begin;
  rec.end = end;
  rec.thread_ord = ThisThreadOrdinal();
  rec.depth = 0;
  std::lock_guard<std::mutex> lock(mu_);
  rec.ctx = ctx.valid() ? ctx : context_;
  spans_.push_back(std::move(rec));
}

void Tracer::EmitSpanOnTrack(std::string_view name, std::string_view track,
                             SimTime begin, SimTime end,
                             const TraceContext& ctx) {
  TraceSpanRecord rec;
  rec.name = std::string(name);
  rec.track = std::string(track);
  rec.begin = begin;
  rec.end = end;
  std::lock_guard<std::mutex> lock(mu_);
  rec.ctx = ctx.valid() ? ctx : context_;
  spans_.push_back(std::move(rec));
}

std::vector<TraceSpanRecord> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<std::pair<std::string, uint64_t>> Tracer::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, TraceHistogram::Snapshot>>
Tracer::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, TraceHistogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram->Take());
  }
  return out;
}

std::vector<std::string> Tracer::OpenSpanNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const TraceSpanRecord& s : spans_) {
    if (s.open) {
      out.push_back(s.name);
    }
  }
  return out;
}

SimDuration Tracer::SpanTotal(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  SimDuration total = 0;
  for (const TraceSpanRecord& s : spans_) {
    if (s.name == name) total += static_cast<SimDuration>(s.end - s.begin);
  }
  return total;
}

size_t Tracer::SpanCount(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const TraceSpanRecord& s : spans_) {
    if (s.name == name) ++n;
  }
  return n;
}

// ----- exporters -----

namespace {

// Maps a span to its Chrome trace tid. Real threads get tid = ord + 1
// (tid 0 renders oddly in some viewers); named tracks get 1000 + k in
// first-seen order, with the mapping accumulated in `track_tids`.
int SpanTid(const TraceSpanRecord& s,
            std::map<std::string, int, std::less<>>& track_tids) {
  if (s.track.empty()) return s.thread_ord + 1;
  auto it = track_tids.find(s.track);
  if (it == track_tids.end()) {
    it = track_tids.emplace(s.track, 1000 + static_cast<int>(track_tids.size()))
             .first;
  }
  return it->second;
}

void AppendEvent(std::string& out, bool& first, std::string_view body) {
  if (!first) out += ",\n";
  first = false;
  out += "  ";
  out += body;
}

}  // namespace

void WriteChromeTrace(const std::vector<TraceProcess>& processes,
                      std::ostream& out) {
  std::string json = "{\"traceEvents\": [\n";
  bool first = true;
  char buf[256];
  int pid = 0;
  // One flow anchor per context-stamped span, keyed by context across all
  // processes: the first (by begin time) becomes the flow start ("s"), each
  // later one a step ("f" binding to its enclosing span) — the arrow chain
  // that stitches home → wire → guest → coordinator into one causal view.
  struct FlowPoint {
    SimTime ts = 0;
    int pid = 0;
    int tid = 0;
    size_t order = 0;  // insertion order breaks ts ties deterministically
  };
  std::map<TraceContext, std::vector<FlowPoint>> flows;
  size_t flow_order = 0;
  for (const TraceProcess& proc : processes) {
    ++pid;
    {
      std::string ev = "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": ";
      std::snprintf(buf, sizeof(buf), "%d", pid);
      ev += buf;
      ev += ", \"tid\": 0, \"args\": {\"name\": \"";
      AppendJsonEscaped(ev, proc.name);
      ev += "\"}}";
      AppendEvent(json, first, ev);
    }
    if (proc.tracer == nullptr) continue;

    const std::vector<TraceSpanRecord> spans = proc.tracer->Spans();
    std::map<std::string, int, std::less<>> track_tids;
    std::map<int, std::string> tid_names;
    SimTime max_end = 0;
    for (const TraceSpanRecord& s : spans) {
      const int tid = SpanTid(s, track_tids);
      if (tid_names.find(tid) == tid_names.end()) {
        tid_names[tid] = s.track.empty()
                             ? "thread " + std::to_string(s.thread_ord)
                             : s.track;
      }
      max_end = std::max(max_end, s.end);

      std::string ev = "{\"name\": \"";
      AppendJsonEscaped(ev, s.name);
      ev += "\", \"cat\": \"flux\", \"ph\": \"X\", \"ts\": ";
      std::snprintf(buf, sizeof(buf), "%" PRIu64, s.begin);
      ev += buf;
      ev += ", \"dur\": ";
      std::snprintf(buf, sizeof(buf), "%" PRIu64,
                    static_cast<uint64_t>(s.end - s.begin));
      ev += buf;
      std::snprintf(buf, sizeof(buf), ", \"pid\": %d, \"tid\": %d", pid, tid);
      ev += buf;
      if (s.ctx.valid()) {
        ev += ", \"args\": {\"ctx\": \"";
        ev += s.ctx.ToHex();
        ev += "\"}";
        flows[s.ctx].push_back(FlowPoint{s.begin, pid, tid, flow_order++});
      }
      ev += "}";
      AppendEvent(json, first, ev);
    }
    for (const auto& [tid, name] : tid_names) {
      std::string ev = "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": ";
      std::snprintf(buf, sizeof(buf), "%d, \"tid\": %d", pid, tid);
      ev += buf;
      ev += ", \"args\": {\"name\": \"";
      AppendJsonEscaped(ev, name);
      ev += "\"}}";
      AppendEvent(json, first, ev);
    }
    // Counters: one "C" sample stamped at the trace end (values are final
    // totals, not a time series — the migration is simulated, so sampling
    // mid-flight would be fiction).
    for (const auto& [name, value] : proc.tracer->Counters()) {
      std::string ev = "{\"name\": \"";
      AppendJsonEscaped(ev, name);
      ev += "\", \"cat\": \"flux\", \"ph\": \"C\", \"ts\": ";
      std::snprintf(buf, sizeof(buf), "%" PRIu64, max_end);
      ev += buf;
      std::snprintf(buf, sizeof(buf), ", \"pid\": %d, \"tid\": 0", pid);
      ev += buf;
      ev += ", \"args\": {\"value\": ";
      std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
      ev += buf;
      ev += "}}";
      AppendEvent(json, first, ev);
    }
  }
  // Flow events: one "s" at each context's earliest span, then an "f" step
  // (bp "e": bind to the enclosing slice) at every later span with the same
  // id. A context seen on a single span draws no arrow and emits nothing.
  for (auto& [ctx, points] : flows) {
    if (points.size() < 2) continue;
    std::stable_sort(points.begin(), points.end(),
                     [](const FlowPoint& a, const FlowPoint& b) {
                       return a.ts != b.ts ? a.ts < b.ts : a.order < b.order;
                     });
    for (size_t i = 0; i < points.size(); ++i) {
      const FlowPoint& p = points[i];
      std::string ev = "{\"name\": \"migration/flow\", \"cat\": \"flux\", ";
      ev += i == 0 ? "\"ph\": \"s\"" : "\"ph\": \"f\", \"bp\": \"e\"";
      ev += ", \"id\": \"";
      ev += ctx.ToHex();
      std::snprintf(buf, sizeof(buf),
                    "\", \"ts\": %" PRIu64 ", \"pid\": %d, \"tid\": %d}", p.ts,
                    p.pid, p.tid);
      ev += buf;
      AppendEvent(json, first, ev);
    }
  }
  json += "\n], \"displayTimeUnit\": \"ms\"}\n";
  out << json;
}

std::string ChromeTraceJson(const Tracer& tracer) {
  std::ostringstream out;
  WriteChromeTrace({{"flux", &tracer}}, out);
  return out.str();
}

MigrationPhases ExtractMigrationPhases(const Tracer& tracer) {
  MigrationPhases p;
  p.prepare = tracer.SpanTotal(trace_names::kSpanPrepare);
  p.checkpoint = tracer.SpanTotal(trace_names::kSpanCheckpoint);
  p.compress = tracer.SpanTotal(trace_names::kSpanCompress);
  p.transfer = tracer.SpanTotal(trace_names::kSpanTransfer);
  p.restore = tracer.SpanTotal(trace_names::kSpanRestore);
  p.reintegrate = tracer.SpanTotal(trace_names::kSpanReintegrate);
  p.replay = tracer.SpanTotal(trace_names::kSpanReplay);
  p.background_tail = tracer.SpanTotal(trace_names::kSpanBackgroundTail);
  return p;
}

std::string PhaseReportText(const Tracer& tracer) {
  const MigrationPhases p = ExtractMigrationPhases(tracer);
  const double total = ToSecondsF(p.Total());
  std::string out = "migration phase breakdown\n";
  char buf[160];
  auto row = [&](const char* name, SimDuration d) {
    const double sec = ToSecondsF(d);
    const double pct = total > 0 ? 100.0 * sec / total : 0.0;
    std::snprintf(buf, sizeof(buf), "  %-16s %10.6f s  %6.1f%%\n", name, sec,
                  pct);
    out += buf;
  };
  row("prepare", p.prepare);
  row("checkpoint", p.checkpoint);
  row("transfer", p.transfer);
  row("restore", p.restore);
  row("reintegrate", p.reintegrate);
  if (p.background_tail > 0) row("background_tail", p.background_tail);
  std::snprintf(buf, sizeof(buf), "  %-16s %10.6f s\n", "total", total);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  (sub-phases: compress %.6f s, replay %.6f s)\n",
                ToSecondsF(p.compress), ToSecondsF(p.replay));
  out += buf;

  const auto counters = tracer.Counters();
  if (!counters.empty()) {
    out += "counters\n";
    for (const auto& [name, value] : counters) {
      std::snprintf(buf, sizeof(buf), "  %-28s %" PRIu64 "\n", name.c_str(),
                    value);
      out += buf;
    }
  }
  return out;
}

}  // namespace flux
