#include "src/flux/forensics.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "src/flux/call_log.h"

namespace flux {

namespace {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  AppendJsonEscaped(out, s);
  out += '"';
}

void AppendEvents(std::string& out, const std::vector<FlightEventView>& events) {
  out += '[';
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEventView& e = events[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"t\":" + std::to_string(e.time);
    out += ",\"sub\":";
    AppendJsonString(out, e.subsystem);
    out += ",\"name\":";
    AppendJsonString(out, e.name);
    out += ",\"sev\":";
    AppendJsonString(out, EventSeverityName(e.severity));
    out += ",\"arg0\":" + std::to_string(e.arg0);
    out += ",\"arg1\":" + std::to_string(e.arg1);
    if (e.ctx.valid()) {
      out += ",\"ctx\":";
      AppendJsonString(out, e.ctx.ToHex());
    }
    if (!e.detail.empty()) {
      out += ",\"detail\":";
      AppendJsonString(out, e.detail);
    }
    out += '}';
  }
  out += ']';
}

}  // namespace

std::string_view ReplayOutcomeName(ReplayOutcome outcome) {
  switch (outcome) {
    case ReplayOutcome::kVerbatim:
      return "verbatim";
    case ReplayOutcome::kProxied:
      return "proxied";
    case ReplayOutcome::kSkipped:
      return "skipped";
    case ReplayOutcome::kAdapted:
      return "adapted";
    case ReplayOutcome::kFailed:
      return "failed";
  }
  return "?";
}

void CrossCheckJournal(ReplayAuditJournal& journal, const CallLog& log) {
  const std::vector<CallRecord>& calls = log.entries();
  journal.log_calls = calls.size();
  const size_t covered = std::min(journal.entries.size(), calls.size());
  for (size_t i = 0; i < covered; ++i) {
    const ReplayAuditEntry& entry = journal.entries[i];
    const CallRecord& call = calls[i];
    if (entry.interface != call.interface || entry.method != call.method) {
      journal.mismatches.push_back(
          "journal[" + std::to_string(i) + "] replayed " + entry.interface +
          "." + entry.method + " but log holds " + call.interface + "." +
          call.method);
    } else if (entry.seq != call.seq) {
      journal.mismatches.push_back("journal[" + std::to_string(i) +
                                   "] seq " + std::to_string(entry.seq) +
                                   " != log seq " + std::to_string(call.seq));
    }
  }
  if (journal.entries.size() > calls.size()) {
    journal.mismatches.push_back(
        "journal has " + std::to_string(journal.entries.size()) +
        " entries but the log holds only " + std::to_string(calls.size()) +
        " calls");
  } else if (journal.entries.size() < calls.size()) {
    // A replay that aborts mid-log legitimately leaves a tail uncovered;
    // record it so the report shows how far replay got.
    journal.mismatches.push_back(
        "replay covered " + std::to_string(journal.entries.size()) + " of " +
        std::to_string(calls.size()) + " logged calls");
  }
}

std::vector<ForensicCause> FlattenCauseChain(const Status& status) {
  std::vector<ForensicCause> chain;
  if (status.ok()) {
    return chain;
  }
  for (const Status* link = &status; link != nullptr; link = link->cause()) {
    ForensicCause cause;
    cause.code = std::string(StatusCodeName(link->code()));
    cause.message = std::string(link->message());
    chain.push_back(std::move(cause));
  }
  return chain;
}

std::string ForensicReportJson(const ForensicReport& report) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"app\": ";
  AppendJsonString(out, report.app);
  out += ",\n  \"home_device\": ";
  AppendJsonString(out, report.home_device);
  out += ",\n  \"guest_device\": ";
  AppendJsonString(out, report.guest_device);
  out += ",\n  \"failure_phase\": ";
  AppendJsonString(out, report.failure_phase);
  out += ",\n  \"captured_at_us\": " + std::to_string(report.captured_at);
  out += ",\n  \"rolled_back\": ";
  out += report.rolled_back ? "true" : "false";
  out += ",\n  \"trace_context\": ";
  AppendJsonString(out, report.trace_context.valid()
                            ? report.trace_context.ToHex()
                            : std::string());

  out += ",\n  \"cause_chain\": [";
  for (size_t i = 0; i < report.cause_chain.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += "\n    {\"code\": ";
    AppendJsonString(out, report.cause_chain[i].code);
    out += ", \"message\": ";
    AppendJsonString(out, report.cause_chain[i].message);
    out += '}';
  }
  out += "\n  ]";

  out += ",\n  \"home_events\": ";
  AppendEvents(out, report.home_events);
  out += ",\n  \"guest_events\": ";
  AppendEvents(out, report.guest_events);

  out += ",\n  \"counters\": {";
  for (size_t i = 0; i < report.counters.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += "\n    ";
    AppendJsonString(out, report.counters[i].first);
    out += ": " + std::to_string(report.counters[i].second);
  }
  out += "\n  }";

  out += ",\n  \"open_spans\": [";
  for (size_t i = 0; i < report.open_spans.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    AppendJsonString(out, report.open_spans[i]);
  }
  out += ']';

  const ReplayAuditJournal& journal = report.replay_journal;
  out += ",\n  \"replay_journal\": {\n    \"log_calls\": " +
         std::to_string(journal.log_calls);
  out += ",\n    \"entries\": [";
  for (size_t i = 0; i < journal.entries.size(); ++i) {
    const ReplayAuditEntry& e = journal.entries[i];
    if (i > 0) {
      out += ',';
    }
    out += "\n      {\"index\": " + std::to_string(e.index);
    out += ", \"seq\": " + std::to_string(e.seq);
    out += ", \"call\": ";
    AppendJsonString(out, e.interface + "." + e.method);
    out += ", \"outcome\": ";
    AppendJsonString(out, ReplayOutcomeName(e.outcome));
    if (!e.detail.empty()) {
      out += ", \"detail\": ";
      AppendJsonString(out, e.detail);
    }
    out += '}';
  }
  out += "\n    ],\n    \"mismatches\": [";
  for (size_t i = 0; i < journal.mismatches.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    AppendJsonString(out, journal.mismatches[i]);
  }
  out += "]\n  }\n}\n";
  return out;
}

void WriteForensicReport(const ForensicReport& report, std::ostream& out) {
  out << ForensicReportJson(report);
}

std::string ForensicReportText(const ForensicReport& report) {
  std::ostringstream out;
  out << "=== forensic report: " << report.app << " " << report.home_device
      << " -> " << report.guest_device << " ===\n";
  out << "failed during: " << report.failure_phase
      << (report.rolled_back ? " (rolled back)" : "") << "  at t="
      << static_cast<double>(report.captured_at) / 1e6 << "s\n";
  if (report.trace_context.valid()) {
    out << "trace context: " << report.trace_context.ToHex() << "\n";
  }
  if (!report.cause_chain.empty()) {
    out << "cause chain:\n";
    for (size_t i = 0; i < report.cause_chain.size(); ++i) {
      out << "  " << std::string(i * 2, ' ') << (i == 0 ? "" : "<- ")
          << report.cause_chain[i].code << ": "
          << report.cause_chain[i].message << "\n";
    }
  }
  if (!report.open_spans.empty()) {
    out << "spans still open at capture:\n";
    for (const std::string& span : report.open_spans) {
      out << "  " << span << "\n";
    }
  }
  auto dump_events = [&out](const char* label,
                            const std::vector<FlightEventView>& events) {
    if (events.empty()) {
      return;
    }
    out << label << " flight recorder (" << events.size() << " events):\n";
    for (const FlightEventView& e : events) {
      out << "  [" << static_cast<double>(e.time) / 1e6 << "s] "
          << EventSeverityName(e.severity) << " " << e.name << " arg0="
          << e.arg0 << " arg1=" << e.arg1;
      if (!e.detail.empty()) {
        out << " \"" << e.detail << "\"";
      }
      out << "\n";
    }
  };
  dump_events("home", report.home_events);
  dump_events("guest", report.guest_events);
  const ReplayAuditJournal& journal = report.replay_journal;
  if (!journal.entries.empty() || journal.log_calls > 0) {
    out << "replay journal (" << journal.entries.size() << " of "
        << journal.log_calls << " logged calls):\n";
    for (const ReplayAuditEntry& e : journal.entries) {
      out << "  #" << e.index << " seq=" << e.seq << " " << e.interface << "."
          << e.method << " -> " << ReplayOutcomeName(e.outcome);
      if (!e.detail.empty()) {
        out << " (" << e.detail << ")";
      }
      out << "\n";
    }
    for (const std::string& mismatch : journal.mismatches) {
      out << "  MISMATCH: " << mismatch << "\n";
    }
  }
  if (!report.counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : report.counters) {
      out << "  " << name << " = " << value << "\n";
    }
  }
  return out.str();
}

}  // namespace flux
