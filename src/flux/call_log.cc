#include "src/flux/call_log.h"

#include <algorithm>

namespace flux {

void CallLog::Append(CallRecord record) {
  record.seq = next_seq_++;
  entries_.push_back(std::move(record));
}

int CallLog::RemoveIf(const std::function<bool(const CallRecord&)>& predicate) {
  const auto old_size = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(), predicate),
                 entries_.end());
  return static_cast<int>(old_size - entries_.size());
}

uint64_t CallLog::WireSize() const {
  uint64_t total = 0;
  for (const auto& entry : entries_) {
    total += 48 + entry.service.size() + entry.interface.size() +
             entry.method.size() + entry.args.WireSize() +
             entry.reply.WireSize();
  }
  return total;
}

void CallLog::Serialize(ArchiveWriter& out) const {
  out.PutU64(entries_.size());
  for (const auto& entry : entries_) {
    out.PutU64(entry.seq);
    out.PutU64(entry.time);
    out.PutString(entry.service);
    out.PutString(entry.interface);
    out.PutString(entry.method);
    out.PutU64(entry.node_id);
    out.PutBool(entry.oneway);
    ArchiveWriter args;
    entry.args.Serialize(args);
    out.PutSection(args);
    ArchiveWriter reply;
    entry.reply.Serialize(reply);
    out.PutSection(reply);
  }
}

Result<CallLog> CallLog::Deserialize(ArchiveReader& in) {
  CallLog log;
  uint64_t count = 0;
  FLUX_RETURN_IF_ERROR(in.GetU64(count));
  uint64_t max_seq = 0;
  for (uint64_t i = 0; i < count; ++i) {
    CallRecord entry;
    FLUX_RETURN_IF_ERROR(in.GetU64(entry.seq));
    FLUX_RETURN_IF_ERROR(in.GetU64(entry.time));
    FLUX_RETURN_IF_ERROR(in.GetString(entry.service));
    FLUX_RETURN_IF_ERROR(in.GetString(entry.interface));
    FLUX_RETURN_IF_ERROR(in.GetString(entry.method));
    FLUX_RETURN_IF_ERROR(in.GetU64(entry.node_id));
    FLUX_RETURN_IF_ERROR(in.GetBool(entry.oneway));
    ArchiveReader args_section({});
    FLUX_RETURN_IF_ERROR(in.GetSection(args_section));
    FLUX_ASSIGN_OR_RETURN(entry.args, Parcel::Deserialize(args_section));
    ArchiveReader reply_section({});
    FLUX_RETURN_IF_ERROR(in.GetSection(reply_section));
    FLUX_ASSIGN_OR_RETURN(entry.reply, Parcel::Deserialize(reply_section));
    max_seq = std::max(max_seq, entry.seq);
    log.entries_.push_back(std::move(entry));
  }
  log.next_seq_ = max_seq + 1;
  return log;
}

}  // namespace flux
