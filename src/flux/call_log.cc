#include "src/flux/call_log.h"

#include <algorithm>

#include "src/base/interner.h"

namespace flux {

void CallLog::Append(CallRecord record) {
  record.seq = next_seq_++;
  IndexNewEntry(std::move(record));
}

void CallLog::IndexNewEntry(CallRecord&& record) {
  Interner& interner = Interner::Global();
  if (record.interface_id == 0) {
    record.interface_id = interner.Intern(record.interface);
  }
  if (record.method_id == 0) {
    record.method_id = interner.Intern(record.method);
  }
  record.wire_bytes = 48 + record.service.size() + record.interface.size() +
                      record.method.size() + record.args.WireSize() +
                      record.reply.WireSize();
  wire_size_ += record.wire_bytes;
  ++live_count_;
  buckets_[BucketKey{record.interface_id, record.node_id}].push_back(
      static_cast<uint32_t>(slots_.size()));
  slots_.push_back(std::move(record));
  dead_.push_back(0);
}

int CallLog::RemoveIf(const std::function<bool(const CallRecord&)>& predicate) {
  int removed = 0;
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    if (!dead_[i] && predicate(slots_[i])) {
      MarkDead(i);
      ++removed;
    }
  }
  if (removed > 0) {
    Compact();
  }
  return removed;
}

void CallLog::MarkDead(uint32_t slot) {
  wire_size_ -= slots_[slot].wire_bytes;
  --live_count_;
  ++dead_count_;
  dead_[slot] = 1;
  slots_[slot] = CallRecord{};  // release parcels/strings immediately
}

void CallLog::CompactIfWorthwhile() {
  // Each compaction of n slots is paid for by at least n/2 prior drops, so
  // pruning stays O(bucket) amortized; the floor keeps tiny logs from
  // compacting (and reindexing) on every drop.
  if (dead_count_ > live_count_ && dead_count_ > 32) {
    Compact();
  }
}

void CallLog::Compact() const {
  if (dead_count_ == 0) {
    return;
  }
  size_t write = 0;
  for (size_t read = 0; read < slots_.size(); ++read) {
    if (dead_[read]) {
      continue;
    }
    if (write != read) {
      slots_[write] = std::move(slots_[read]);
    }
    ++write;
  }
  slots_.resize(write);
  dead_.assign(write, 0);
  dead_count_ = 0;
  RebuildBuckets();
}

void CallLog::RebuildBuckets() const {
  // Vectors keep their capacity across rebuilds; compaction is amortized, so
  // the string-free full reindex never dominates the record path.
  for (auto& [key, indices] : buckets_) {
    (void)key;
    indices.clear();
  }
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    buckets_[BucketKey{slots_[i].interface_id, slots_[i].node_id}].push_back(i);
  }
}

void CallLog::Clear() {
  slots_.clear();
  dead_.clear();
  buckets_.clear();
  wire_size_ = 0;
  live_count_ = 0;
  dead_count_ = 0;
}

void CallLog::Serialize(ArchiveWriter& out) const {
  out.PutU64(live_count_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (dead_[i]) {
      continue;
    }
    const CallRecord& entry = slots_[i];
    out.PutU64(entry.seq);
    out.PutU64(entry.time);
    out.PutString(entry.service);
    out.PutString(entry.interface);
    out.PutString(entry.method);
    out.PutU64(entry.node_id);
    out.PutBool(entry.oneway);
    ArchiveWriter args;
    entry.args.Serialize(args);
    out.PutSection(args);
    ArchiveWriter reply;
    entry.reply.Serialize(reply);
    out.PutSection(reply);
  }
}

Result<CallLog> CallLog::Deserialize(ArchiveReader& in) {
  CallLog log;
  uint64_t count = 0;
  FLUX_RETURN_IF_ERROR(in.GetU64(count));
  uint64_t max_seq = 0;
  for (uint64_t i = 0; i < count; ++i) {
    CallRecord entry;
    FLUX_RETURN_IF_ERROR(in.GetU64(entry.seq));
    FLUX_RETURN_IF_ERROR(in.GetU64(entry.time));
    FLUX_RETURN_IF_ERROR(in.GetString(entry.service));
    FLUX_RETURN_IF_ERROR(in.GetString(entry.interface));
    FLUX_RETURN_IF_ERROR(in.GetString(entry.method));
    FLUX_RETURN_IF_ERROR(in.GetU64(entry.node_id));
    FLUX_RETURN_IF_ERROR(in.GetBool(entry.oneway));
    ArchiveReader args_section({});
    FLUX_RETURN_IF_ERROR(in.GetSection(args_section));
    FLUX_ASSIGN_OR_RETURN(entry.args, Parcel::Deserialize(args_section));
    ArchiveReader reply_section({});
    FLUX_RETURN_IF_ERROR(in.GetSection(reply_section));
    FLUX_ASSIGN_OR_RETURN(entry.reply, Parcel::Deserialize(reply_section));
    max_seq = std::max(max_seq, entry.seq);
    // Re-interns ids for this process; the wire format never carries them.
    log.IndexNewEntry(std::move(entry));
  }
  log.next_seq_ = max_seq + 1;
  return log;
}

}  // namespace flux
