#include "src/playstore/catalog.h"

#include <algorithm>
#include <cmath>

#include "src/base/rng.h"

namespace flux {

namespace {

// Log-normal parameters fitted to the paper's quantiles:
//   P(size < 1 MB)  = 0.60  ->  (ln 1MiB  - mu) / sigma = z(0.60) = 0.2533
//   P(size < 10 MB) = 0.90  ->  (ln 10MiB - mu) / sigma = z(0.90) = 1.2816
// which gives sigma = ln(10) / (1.2816 - 0.2533) ~= 2.239 and
// mu = ln(1 MiB) - 0.2533 * sigma ~= 13.29 (median ~ 590 KB).
constexpr double kMu = 13.29;
constexpr double kSigma = 2.239;
constexpr uint64_t kMinSize = 8 * 1024;          // 8 KB floor
constexpr uint64_t kMaxSize = 4ull << 30;        // 4 GB ceiling

}  // namespace

PlayStoreCatalog::PlayStoreCatalog(int app_count, uint64_t seed) {
  Rng rng(seed);
  apps_.reserve(app_count);
  const double preserve_rate =
      static_cast<double>(kPaperPreserveEglCount) / kPaperAppCount;
  for (int i = 0; i < app_count; ++i) {
    CatalogApp app;
    const double size = rng.NextLogNormal(kMu, kSigma);
    app.install_size = static_cast<uint64_t>(
        std::clamp(size, static_cast<double>(kMinSize),
                   static_cast<double>(kMaxSize)));
    // Preserve-EGL users skew toward games, i.e. larger installs: bias the
    // trait by size while keeping the overall rate.
    const double bias = app.install_size > (10 << 20) ? 4.0 : 0.6;
    app.preserves_egl = rng.NextBool(preserve_rate * bias);
    preserve_egl_count_ += app.preserves_egl ? 1 : 0;
    apps_.push_back(app);
  }
  sorted_sizes_.reserve(apps_.size());
  for (const auto& app : apps_) {
    sorted_sizes_.push_back(app.install_size);
  }
  std::sort(sorted_sizes_.begin(), sorted_sizes_.end());
}

double PlayStoreCatalog::FractionBelow(uint64_t bytes) const {
  const auto it =
      std::lower_bound(sorted_sizes_.begin(), sorted_sizes_.end(), bytes);
  return static_cast<double>(it - sorted_sizes_.begin()) /
         static_cast<double>(sorted_sizes_.size());
}

std::vector<PlayStoreCatalog::CdfPoint> PlayStoreCatalog::Cdf(
    int points_per_decade) const {
  std::vector<CdfPoint> out;
  // 10 KB .. 10 GB, log-spaced (the paper's x-axis).
  const double lo = std::log10(10.0 * 1024);
  const double hi = std::log10(10.0 * 1024 * 1024 * 1024);
  const int steps = static_cast<int>((hi - lo) * points_per_decade);
  for (int i = 0; i <= steps; ++i) {
    const double log_size = lo + (hi - lo) * i / steps;
    CdfPoint point;
    point.size_bytes = static_cast<uint64_t>(std::pow(10.0, log_size));
    point.fraction = FractionBelow(point.size_bytes);
    out.push_back(point);
  }
  return out;
}

uint64_t PlayStoreCatalog::MedianSize() const {
  return sorted_sizes_[sorted_sizes_.size() / 2];
}

}  // namespace flux
