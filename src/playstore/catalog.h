// Google Play catalog model (§4, Figure 17).
//
// The paper crawled 488,259 free apps with PlayDrone, measured their
// installation sizes (60% < 1 MB, 90% < 10 MB) and decompiled them to count
// setPreserveEGLContextOnPause users (3,300 — the apps Flux cannot migrate).
// We model installation sizes as a log-normal fitted to those two quantiles
// and sample the preserve-EGL trait at the measured rate, deterministically.
#ifndef FLUX_SRC_PLAYSTORE_CATALOG_H_
#define FLUX_SRC_PLAYSTORE_CATALOG_H_

#include <cstdint>
#include <vector>

namespace flux {

struct CatalogApp {
  uint64_t install_size = 0;  // bytes (== APK size; verified in §4)
  bool preserves_egl = false;
};

class PlayStoreCatalog {
 public:
  // The paper's crawl size by default.
  static constexpr int kPaperAppCount = 488'259;
  static constexpr int kPaperPreserveEglCount = 3'300;

  explicit PlayStoreCatalog(int app_count = kPaperAppCount,
                            uint64_t seed = 2015);

  const std::vector<CatalogApp>& apps() const { return apps_; }
  int size() const { return static_cast<int>(apps_.size()); }

  // Fraction of apps with install_size < bytes.
  double FractionBelow(uint64_t bytes) const;

  // CDF sampled at logarithmically spaced sizes (for the Figure 17 series).
  struct CdfPoint {
    uint64_t size_bytes = 0;
    double fraction = 0.0;
  };
  std::vector<CdfPoint> Cdf(int points_per_decade = 4) const;

  int preserve_egl_count() const { return preserve_egl_count_; }
  double preserve_egl_fraction() const {
    return static_cast<double>(preserve_egl_count_) / size();
  }

  uint64_t MedianSize() const;

 private:
  std::vector<CatalogApp> apps_;
  std::vector<uint64_t> sorted_sizes_;
  int preserve_egl_count_ = 0;
};

}  // namespace flux

#endif  // FLUX_SRC_PLAYSTORE_CATALOG_H_
