// OpenGL ES / EGL simulation (§2, §3.3).
//
// Android's GL stack is a generic library (well-known API) over a
// vendor-specific library tied to the device's GPU. Apps talk to the GPU
// directly through this stack — it is the one device apps use without a
// system-service intermediary, and therefore the one piece of
// device-specific state CRIA cannot record/replay. Flux's answer is to
// *shed* GPU state before checkpoint:
//   background the app -> trim memory -> destroy contexts -> eglUnload,
// where eglUnload is Flux's extension that unloads the vendor library once
// the last context is gone, leaving no vendor-specific bytes in the process
// image.
//
// EglRuntime models the per-device stack: which vendor library each process
// has loaded (a kVendorLibrary segment in its address space), the GL
// contexts with their texture/shader/buffer footprints (pmem-backed), and
// the preserve-on-pause flag that makes apps unmigratable (§3.4).
#ifndef FLUX_SRC_GPU_EGL_RUNTIME_H_
#define FLUX_SRC_GPU_EGL_RUNTIME_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/kernel/ids.h"

namespace flux {

class SimKernel;

// The vendor half of the GL stack for a given GPU.
struct VendorGlProfile {
  std::string name;          // "adreno320", "tegra_ulp_geforce"
  uint64_t library_size = 0; // bytes mapped into each client process
  double perf_2d = 1.0;      // relative 2D throughput (Quadrant 2D)
  double perf_3d = 1.0;      // relative 3D throughput (Quadrant 3D)
};

struct GlContext {
  uint64_t id = 0;
  Pid owner = kInvalidPid;
  uint64_t texture_bytes = 0;
  uint64_t buffer_bytes = 0;
  int shader_count = 0;
  bool preserve_on_pause = false;  // setPreserveEGLContextOnPause
  std::vector<uint64_t> pmem_allocs;
};

class EglRuntime {
 public:
  EglRuntime(SimKernel* kernel, VendorGlProfile profile)
      : kernel_(kernel), profile_(std::move(profile)) {}

  const VendorGlProfile& profile() const { return profile_; }

  // Maps the generic + vendor libraries into the process (first GL use).
  Status LoadVendorLibrary(Pid pid);
  bool VendorLibraryLoaded(Pid pid) const;

  // Flux extension: completely unloads the vendor library from the process.
  // Fails if the process still owns GL contexts (§3.3).
  Status EglUnload(Pid pid);

  // ----- contexts -----
  Result<uint64_t> CreateContext(Pid pid);
  Status DestroyContext(uint64_t context_id);
  // Destroys all of a process's contexts, freeing their pmem; contexts with
  // preserve_on_pause survive unless `force`.
  int DestroyContextsOf(Pid pid, bool force);
  GlContext* FindContext(uint64_t context_id);
  std::vector<const GlContext*> ContextsOf(Pid pid) const;
  bool HasPreservedContext(Pid pid) const;

  // ----- resource traffic (drives context footprints) -----
  Status UploadTexture(uint64_t context_id, uint64_t bytes);
  Status CompileShader(uint64_t context_id);
  Status AllocateVertexBuffer(uint64_t context_id, uint64_t bytes);
  Status SetPreserveOnPause(uint64_t context_id, bool preserve);

  // Total GPU-side bytes attributable to a process (textures + buffers).
  uint64_t GpuBytesOf(Pid pid) const;

  // Cleans up after a killed process.
  void OnProcessExit(Pid pid);

 private:
  SimKernel* kernel_;
  VendorGlProfile profile_;
  uint64_t next_context_id_ = 1;
  std::map<uint64_t, GlContext> contexts_;
  // pid -> start address of the vendor library segment.
  std::map<Pid, uint64_t> loaded_;
};

}  // namespace flux

#endif  // FLUX_SRC_GPU_EGL_RUNTIME_H_
