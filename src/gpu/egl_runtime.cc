#include "src/gpu/egl_runtime.h"

#include "src/base/strings.h"
#include "src/kernel/sim_kernel.h"

namespace flux {

Status EglRuntime::LoadVendorLibrary(Pid pid) {
  if (loaded_.count(pid) > 0) {
    return OkStatus();  // idempotent, like dlopen refcounting
  }
  SimProcess* process = kernel_->FindProcess(pid);
  if (process == nullptr) {
    return NotFound(StrFormat("no process %d", pid));
  }
  MemorySegment segment;
  segment.name = "/vendor/lib/libGLES_" + profile_.name + ".so";
  segment.kind = SegmentKind::kVendorLibrary;
  segment.mapped_size = profile_.library_size;
  segment.backing_path = segment.name;
  const uint64_t start = process->address_space().Map(std::move(segment));
  loaded_[pid] = start;
  return OkStatus();
}

bool EglRuntime::VendorLibraryLoaded(Pid pid) const {
  return loaded_.count(pid) > 0;
}

Status EglRuntime::EglUnload(Pid pid) {
  auto it = loaded_.find(pid);
  if (it == loaded_.end()) {
    return OkStatus();  // nothing mapped
  }
  for (const auto& [id, context] : contexts_) {
    (void)id;
    if (context.owner == pid) {
      return FailedPrecondition(
          StrFormat("eglUnload: pid %d still owns GL contexts", pid));
    }
  }
  SimProcess* process = kernel_->FindProcess(pid);
  if (process != nullptr) {
    (void)process->address_space().Unmap(it->second);
  }
  loaded_.erase(it);
  return OkStatus();
}

Result<uint64_t> EglRuntime::CreateContext(Pid pid) {
  if (kernel_->FindProcess(pid) == nullptr) {
    return NotFound(StrFormat("no process %d", pid));
  }
  FLUX_RETURN_IF_ERROR(LoadVendorLibrary(pid));
  GlContext context;
  context.id = next_context_id_++;
  context.owner = pid;
  const uint64_t id = context.id;
  contexts_.emplace(id, std::move(context));
  return id;
}

Status EglRuntime::DestroyContext(uint64_t context_id) {
  auto it = contexts_.find(context_id);
  if (it == contexts_.end()) {
    return NotFound("no such GL context");
  }
  for (uint64_t alloc : it->second.pmem_allocs) {
    (void)kernel_->pmem().Free(alloc);
  }
  contexts_.erase(it);
  return OkStatus();
}

int EglRuntime::DestroyContextsOf(Pid pid, bool force) {
  std::vector<uint64_t> to_destroy;
  for (const auto& [id, context] : contexts_) {
    if (context.owner == pid && (force || !context.preserve_on_pause)) {
      to_destroy.push_back(id);
    }
  }
  for (uint64_t id : to_destroy) {
    (void)DestroyContext(id);
  }
  return static_cast<int>(to_destroy.size());
}

GlContext* EglRuntime::FindContext(uint64_t context_id) {
  auto it = contexts_.find(context_id);
  return it == contexts_.end() ? nullptr : &it->second;
}

std::vector<const GlContext*> EglRuntime::ContextsOf(Pid pid) const {
  std::vector<const GlContext*> out;
  for (const auto& [id, context] : contexts_) {
    (void)id;
    if (context.owner == pid) {
      out.push_back(&context);
    }
  }
  return out;
}

bool EglRuntime::HasPreservedContext(Pid pid) const {
  for (const auto& [id, context] : contexts_) {
    (void)id;
    if (context.owner == pid && context.preserve_on_pause) {
      return true;
    }
  }
  return false;
}

Status EglRuntime::UploadTexture(uint64_t context_id, uint64_t bytes) {
  GlContext* context = FindContext(context_id);
  if (context == nullptr) {
    return NotFound("no such GL context");
  }
  FLUX_ASSIGN_OR_RETURN(uint64_t alloc,
                        kernel_->pmem().Allocate(context->owner, bytes));
  context->pmem_allocs.push_back(alloc);
  context->texture_bytes += bytes;
  return OkStatus();
}

Status EglRuntime::CompileShader(uint64_t context_id) {
  GlContext* context = FindContext(context_id);
  if (context == nullptr) {
    return NotFound("no such GL context");
  }
  ++context->shader_count;
  return OkStatus();
}

Status EglRuntime::AllocateVertexBuffer(uint64_t context_id, uint64_t bytes) {
  GlContext* context = FindContext(context_id);
  if (context == nullptr) {
    return NotFound("no such GL context");
  }
  FLUX_ASSIGN_OR_RETURN(uint64_t alloc,
                        kernel_->pmem().Allocate(context->owner, bytes));
  context->pmem_allocs.push_back(alloc);
  context->buffer_bytes += bytes;
  return OkStatus();
}

Status EglRuntime::SetPreserveOnPause(uint64_t context_id, bool preserve) {
  GlContext* context = FindContext(context_id);
  if (context == nullptr) {
    return NotFound("no such GL context");
  }
  context->preserve_on_pause = preserve;
  return OkStatus();
}

uint64_t EglRuntime::GpuBytesOf(Pid pid) const {
  uint64_t total = 0;
  for (const auto& [id, context] : contexts_) {
    (void)id;
    if (context.owner == pid) {
      total += context.texture_bytes + context.buffer_bytes;
    }
  }
  return total;
}

void EglRuntime::OnProcessExit(Pid pid) {
  DestroyContextsOf(pid, /*force=*/true);
  loaded_.erase(pid);
}

}  // namespace flux
