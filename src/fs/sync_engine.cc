#include "src/fs/sync_engine.h"

#include "src/base/compress.h"
#include "src/base/strings.h"

namespace flux {

void SyncStats::Accumulate(const SyncStats& other) {
  files_total += other.files_total;
  files_up_to_date += other.files_up_to_date;
  files_linked += other.files_linked;
  files_copied += other.files_copied;
  bytes_total += other.bytes_total;
  bytes_linked += other.bytes_linked;
  bytes_up_to_date += other.bytes_up_to_date;
  bytes_copied_raw += other.bytes_copied_raw;
  bytes_transferred += other.bytes_transferred;
  metadata_bytes += other.metadata_bytes;
}

namespace {

std::string JoinPath(const std::string& root, std::string_view relative) {
  if (relative.empty()) {
    return root;
  }
  if (root == "/") {
    return "/" + std::string(relative);
  }
  return root + "/" + std::string(relative);
}

}  // namespace

Result<SyncStats> SyncTree(const SimFilesystem& src,
                           const std::string& src_root, SimFilesystem& dst,
                           const std::string& dst_root,
                           const SyncOptions& options) {
  if (!src.Exists(src_root)) {
    return NotFound("sync source missing: " + src_root);
  }
  FLUX_ASSIGN_OR_RETURN(auto files, src.WalkFiles(src_root));
  FLUX_RETURN_IF_ERROR(dst.Mkdirs(dst_root));

  SyncStats stats;
  for (const auto& file : files) {
    // Relative path under the source root.
    std::string_view rel(file.path);
    if (rel.size() > src_root.size() && StrStartsWith(rel, src_root)) {
      rel.remove_prefix(src_root.size());
      if (!rel.empty() && rel[0] == '/') {
        rel.remove_prefix(1);
      }
    } else if (rel == src_root) {
      // Source root itself is a file.
      rel = std::string_view(file.path).substr(file.path.rfind('/') + 1);
    }

    const std::string dst_path = JoinPath(dst_root, rel);
    ++stats.files_total;
    stats.bytes_total += file.size;
    stats.metadata_bytes += options.per_file_metadata_bytes;

    // Already up to date?
    if (dst.IsFile(dst_path)) {
      auto dst_hash = dst.FileHash(dst_path);
      auto dst_size = dst.FileSize(dst_path);
      if (dst_hash.ok() && dst_size.ok() &&
          dst_hash.value() == file.content_hash &&
          dst_size.value() == file.size) {
        ++stats.files_up_to_date;
        stats.bytes_up_to_date += file.size;
        continue;
      }
    }

    // Identical file available under link_dest?
    if (options.link_dest.has_value()) {
      const std::string candidate = JoinPath(*options.link_dest, rel);
      if (dst.IsFile(candidate)) {
        auto cand_hash = dst.FileHash(candidate);
        auto cand_size = dst.FileSize(candidate);
        if (cand_hash.ok() && cand_size.ok() &&
            cand_hash.value() == file.content_hash &&
            cand_size.value() == file.size) {
          if (dst.Exists(dst_path)) {
            FLUX_RETURN_IF_ERROR(dst.Remove(dst_path));
          }
          FLUX_RETURN_IF_ERROR(dst.Link(candidate, dst_path));
          ++stats.files_linked;
          stats.bytes_linked += file.size;
          continue;
        }
      }
    }

    // Copy (transfer) the content.
    FLUX_ASSIGN_OR_RETURN(const Bytes* content, src.ReadFile(file.path));
    const uint64_t wire =
        options.compress
            ? LzCompressedSize(ByteSpan(content->data(), content->size()))
            : content->size();
    FLUX_RETURN_IF_ERROR(dst.WriteFile(dst_path, *content));
    ++stats.files_copied;
    stats.bytes_copied_raw += file.size;
    stats.bytes_transferred += wire;
  }
  return stats;
}

}  // namespace flux
