// In-memory filesystem substrate.
//
// Each simulated device owns a SimFilesystem holding its system partition
// (framework libraries, vendor GL libraries), data partition (APKs, app data
// directories) and SD card. The filesystem supports hard links, which the
// pairing phase depends on: rsync --link-dest semantics hard-link files that
// are byte-identical on the guest instead of transferring them (§3.1).
//
// Paths are absolute, '/'-separated, with no "." / ".." components.
#ifndef FLUX_SRC_FS_SIM_FILESYSTEM_H_
#define FLUX_SRC_FS_SIM_FILESYSTEM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"

namespace flux {

// File content plus a lazily computed content hash. Multiple directory
// entries may share one Inode (hard links).
class Inode {
 public:
  explicit Inode(Bytes content) : content_(std::move(content)) {}

  const Bytes& content() const { return content_; }
  uint64_t size() const { return content_.size(); }

  void SetContent(Bytes content) {
    content_ = std::move(content);
    hash_valid_ = false;
  }

  // FNV-1a of the content; cached until the content changes.
  uint64_t ContentHash() const;

  int link_count() const { return link_count_; }
  void AddLink() { ++link_count_; }
  void DropLink() { --link_count_; }

 private:
  Bytes content_;
  mutable uint64_t hash_ = 0;
  mutable bool hash_valid_ = false;
  int link_count_ = 0;
};

struct FileInfo {
  std::string path;   // absolute path
  uint64_t size = 0;
  uint64_t content_hash = 0;
  int link_count = 1;
};

class SimFilesystem {
 public:
  SimFilesystem();

  // Creates a directory and all missing parents.
  Status Mkdirs(std::string_view path);

  // Creates or replaces a regular file (parents must exist unless
  // `create_parents`).
  Status WriteFile(std::string_view path, Bytes content,
                   bool create_parents = true);
  Status WriteFile(std::string_view path, std::string_view content,
                   bool create_parents = true);

  // Reads a file's content; the pointer stays valid until the file is
  // removed or rewritten.
  Result<const Bytes*> ReadFile(std::string_view path) const;

  // Hard-links `existing` (a regular file) at `link_path`.
  Status Link(std::string_view existing, std::string_view link_path,
              bool create_parents = true);

  // Removes a file (dropping one link) or an empty directory.
  Status Remove(std::string_view path);

  // Removes a directory tree recursively; ok if missing.
  Status RemoveTree(std::string_view path);

  bool Exists(std::string_view path) const;
  bool IsDirectory(std::string_view path) const;
  bool IsFile(std::string_view path) const;

  Result<uint64_t> FileSize(std::string_view path) const;
  Result<uint64_t> FileHash(std::string_view path) const;

  // True if both paths are links to the same inode.
  bool SameInode(std::string_view a, std::string_view b) const;

  // Lists immediate children names of a directory (sorted).
  Result<std::vector<std::string>> List(std::string_view path) const;

  // All regular files under `root` (depth-first, sorted paths).
  Result<std::vector<FileInfo>> WalkFiles(std::string_view root) const;

  // Sum of file sizes under root, counting each inode once (hard links do
  // not double-count) when `unique_inodes` is true.
  Result<uint64_t> TreeSize(std::string_view root,
                            bool unique_inodes = false) const;

  // Number of regular-file entries under root.
  Result<uint64_t> TreeFileCount(std::string_view root) const;

 private:
  struct Node {
    bool is_dir = false;
    std::shared_ptr<Inode> inode;           // regular files only
    std::map<std::string, Node> children;   // directories only
  };

  static Result<std::vector<std::string>> SplitPath(std::string_view path);
  const Node* FindNode(std::string_view path) const;
  Node* FindNode(std::string_view path);
  Result<Node*> EnsureDir(const std::vector<std::string>& components);

  void WalkFilesImpl(const Node& node, std::string& path,
                     std::vector<FileInfo>& out) const;

  Node root_;
};

}  // namespace flux

#endif  // FLUX_SRC_FS_SIM_FILESYSTEM_H_
