// rsync-style tree synchronization with --link-dest semantics.
//
// Pairing (§3.1) synchronizes the home device's core frameworks, libraries
// and APKs to a private location on the guest's data partition. Because most
// framework files are byte-identical across devices running the same Android
// build, rsync's --link-dest mode hard-links identical files against the
// guest's own system partition instead of transferring them; only the delta
// crosses the network, compressed.
//
// SyncEngine reproduces exactly that accounting:
//   - up-to-date: destination already has the file with matching content;
//   - linked:     a file at the same relative path under link_dest matches
//                 by content hash -> hard link, no bytes transferred;
//   - copied:     content is transferred (optionally compressed).
#ifndef FLUX_SRC_FS_SYNC_ENGINE_H_
#define FLUX_SRC_FS_SYNC_ENGINE_H_

#include <optional>
#include <string>

#include "src/base/result.h"
#include "src/fs/sim_filesystem.h"

namespace flux {

struct SyncStats {
  uint64_t files_total = 0;
  uint64_t files_up_to_date = 0;
  uint64_t files_linked = 0;
  uint64_t files_copied = 0;

  uint64_t bytes_total = 0;        // sum of source file sizes
  uint64_t bytes_linked = 0;       // satisfied via hard links
  uint64_t bytes_up_to_date = 0;   // already present at destination
  uint64_t bytes_copied_raw = 0;   // raw size of transferred files
  uint64_t bytes_transferred = 0;  // on-the-wire (compressed if enabled)

  // Per-file hash exchange cost, modeling rsync's checksum negotiation.
  uint64_t metadata_bytes = 0;

  // Total bytes that actually cross the network for this sync.
  uint64_t WireBytes() const { return bytes_transferred + metadata_bytes; }

  void Accumulate(const SyncStats& other);
};

struct SyncOptions {
  // Hard-link identical files found under this root on the destination
  // filesystem (rsync --link-dest).
  std::optional<std::string> link_dest;
  // Compress file contents before counting transfer bytes (rsync -z).
  bool compress = true;
  // Bytes of metadata exchanged per examined file (path + checksums).
  uint64_t per_file_metadata_bytes = 64;
};

// Synchronizes the tree rooted at `src_root` on `src` into `dst_root` on
// `dst`. Destination files not present in the source are left alone (the
// pairing store is additive; APK updates rewrite in place).
Result<SyncStats> SyncTree(const SimFilesystem& src, const std::string& src_root,
                           SimFilesystem& dst, const std::string& dst_root,
                           const SyncOptions& options = {});

}  // namespace flux

#endif  // FLUX_SRC_FS_SYNC_ENGINE_H_
