#include "src/fs/sim_filesystem.h"

#include <algorithm>

#include "src/base/hash.h"
#include "src/base/strings.h"

namespace flux {

uint64_t Inode::ContentHash() const {
  if (!hash_valid_) {
    hash_ = Fnv1a64(ByteSpan(content_.data(), content_.size()));
    hash_valid_ = true;
  }
  return hash_;
}

SimFilesystem::SimFilesystem() { root_.is_dir = true; }

Result<std::vector<std::string>> SimFilesystem::SplitPath(
    std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgument(StrFormat("path must be absolute: '%.*s'",
                                     static_cast<int>(path.size()),
                                     path.data()));
  }
  std::vector<std::string> components = StrSplitSkipEmpty(path, '/');
  for (const auto& c : components) {
    if (c == "." || c == "..") {
      return InvalidArgument("path must not contain '.' or '..'");
    }
  }
  return components;
}

const SimFilesystem::Node* SimFilesystem::FindNode(
    std::string_view path) const {
  auto components = SplitPath(path);
  if (!components.ok()) {
    return nullptr;
  }
  const Node* node = &root_;
  for (const auto& c : components.value()) {
    if (!node->is_dir) {
      return nullptr;
    }
    auto it = node->children.find(c);
    if (it == node->children.end()) {
      return nullptr;
    }
    node = &it->second;
  }
  return node;
}

SimFilesystem::Node* SimFilesystem::FindNode(std::string_view path) {
  return const_cast<Node*>(
      static_cast<const SimFilesystem*>(this)->FindNode(path));
}

Result<SimFilesystem::Node*> SimFilesystem::EnsureDir(
    const std::vector<std::string>& components) {
  Node* node = &root_;
  for (const auto& c : components) {
    if (!node->is_dir) {
      return FailedPrecondition("path component is a file: " + c);
    }
    auto [it, inserted] = node->children.try_emplace(c);
    if (inserted) {
      it->second.is_dir = true;
    }
    node = &it->second;
  }
  if (!node->is_dir) {
    return FailedPrecondition("target exists and is a file");
  }
  return node;
}

Status SimFilesystem::Mkdirs(std::string_view path) {
  FLUX_ASSIGN_OR_RETURN(auto components, SplitPath(path));
  FLUX_ASSIGN_OR_RETURN(Node * node, EnsureDir(components));
  (void)node;
  return OkStatus();
}

Status SimFilesystem::WriteFile(std::string_view path, Bytes content,
                                bool create_parents) {
  FLUX_ASSIGN_OR_RETURN(auto components, SplitPath(path));
  if (components.empty()) {
    return InvalidArgument("cannot write to '/'");
  }
  const std::string name = components.back();
  components.pop_back();

  Node* dir = nullptr;
  if (create_parents) {
    FLUX_ASSIGN_OR_RETURN(dir, EnsureDir(components));
  } else {
    std::string parent = "/" + StrJoin(components, "/");
    dir = FindNode(parent);
    if (dir == nullptr || !dir->is_dir) {
      return NotFound("parent directory missing: " + parent);
    }
  }

  auto it = dir->children.find(name);
  if (it != dir->children.end()) {
    if (it->second.is_dir) {
      return FailedPrecondition("is a directory: " + std::string(path));
    }
    // Rewriting a hard-linked file breaks the link (copy-on-write), matching
    // how rsync replaces files.
    if (it->second.inode->link_count() > 1) {
      it->second.inode->DropLink();
      it->second.inode = std::make_shared<Inode>(std::move(content));
      it->second.inode->AddLink();
    } else {
      it->second.inode->SetContent(std::move(content));
    }
    return OkStatus();
  }

  Node node;
  node.is_dir = false;
  node.inode = std::make_shared<Inode>(std::move(content));
  node.inode->AddLink();
  dir->children.emplace(name, std::move(node));
  return OkStatus();
}

Status SimFilesystem::WriteFile(std::string_view path,
                                std::string_view content,
                                bool create_parents) {
  Bytes bytes(content.begin(), content.end());
  return WriteFile(path, std::move(bytes), create_parents);
}

Result<const Bytes*> SimFilesystem::ReadFile(std::string_view path) const {
  const Node* node = FindNode(path);
  if (node == nullptr) {
    return NotFound("no such file: " + std::string(path));
  }
  if (node->is_dir) {
    return FailedPrecondition("is a directory: " + std::string(path));
  }
  return &node->inode->content();
}

Status SimFilesystem::Link(std::string_view existing,
                           std::string_view link_path, bool create_parents) {
  Node* src = FindNode(existing);
  if (src == nullptr || src->is_dir) {
    return NotFound("link source missing or is a directory: " +
                    std::string(existing));
  }
  FLUX_ASSIGN_OR_RETURN(auto components, SplitPath(link_path));
  if (components.empty()) {
    return InvalidArgument("cannot link at '/'");
  }
  const std::string name = components.back();
  components.pop_back();

  Node* dir = nullptr;
  if (create_parents) {
    FLUX_ASSIGN_OR_RETURN(dir, EnsureDir(components));
  } else {
    std::string parent = "/" + StrJoin(components, "/");
    dir = FindNode(parent);
    if (dir == nullptr || !dir->is_dir) {
      return NotFound("parent directory missing: " + parent);
    }
  }
  if (dir->children.count(name) > 0) {
    return AlreadyExists("link target exists: " + std::string(link_path));
  }
  Node node;
  node.is_dir = false;
  node.inode = src->inode;
  node.inode->AddLink();
  dir->children.emplace(name, std::move(node));
  return OkStatus();
}

Status SimFilesystem::Remove(std::string_view path) {
  FLUX_ASSIGN_OR_RETURN(auto components, SplitPath(path));
  if (components.empty()) {
    return InvalidArgument("cannot remove '/'");
  }
  const std::string name = components.back();
  components.pop_back();
  std::string parent = "/" + StrJoin(components, "/");
  Node* dir = FindNode(parent);
  if (dir == nullptr || !dir->is_dir) {
    return NotFound("no such path: " + std::string(path));
  }
  auto it = dir->children.find(name);
  if (it == dir->children.end()) {
    return NotFound("no such path: " + std::string(path));
  }
  if (it->second.is_dir && !it->second.children.empty()) {
    return FailedPrecondition("directory not empty: " + std::string(path));
  }
  if (!it->second.is_dir) {
    it->second.inode->DropLink();
  }
  dir->children.erase(it);
  return OkStatus();
}

Status SimFilesystem::RemoveTree(std::string_view path) {
  FLUX_ASSIGN_OR_RETURN(auto components, SplitPath(path));
  if (components.empty()) {
    root_.children.clear();
    return OkStatus();
  }
  const std::string name = components.back();
  components.pop_back();
  std::string parent = "/" + StrJoin(components, "/");
  Node* dir = FindNode(parent);
  if (dir == nullptr || !dir->is_dir) {
    return OkStatus();
  }
  auto it = dir->children.find(name);
  if (it == dir->children.end()) {
    return OkStatus();
  }
  // Drop link counts of every file in the subtree before erasing.
  std::function<void(Node&)> drop = [&](Node& node) {
    if (!node.is_dir) {
      node.inode->DropLink();
      return;
    }
    for (auto& [child_name, child] : node.children) {
      (void)child_name;
      drop(child);
    }
  };
  drop(it->second);
  dir->children.erase(it);
  return OkStatus();
}

bool SimFilesystem::Exists(std::string_view path) const {
  return FindNode(path) != nullptr;
}

bool SimFilesystem::IsDirectory(std::string_view path) const {
  const Node* node = FindNode(path);
  return node != nullptr && node->is_dir;
}

bool SimFilesystem::IsFile(std::string_view path) const {
  const Node* node = FindNode(path);
  return node != nullptr && !node->is_dir;
}

Result<uint64_t> SimFilesystem::FileSize(std::string_view path) const {
  const Node* node = FindNode(path);
  if (node == nullptr || node->is_dir) {
    return NotFound("no such file: " + std::string(path));
  }
  return node->inode->size();
}

Result<uint64_t> SimFilesystem::FileHash(std::string_view path) const {
  const Node* node = FindNode(path);
  if (node == nullptr || node->is_dir) {
    return NotFound("no such file: " + std::string(path));
  }
  return node->inode->ContentHash();
}

bool SimFilesystem::SameInode(std::string_view a, std::string_view b) const {
  const Node* na = FindNode(a);
  const Node* nb = FindNode(b);
  return na != nullptr && nb != nullptr && !na->is_dir && !nb->is_dir &&
         na->inode == nb->inode;
}

Result<std::vector<std::string>> SimFilesystem::List(
    std::string_view path) const {
  const Node* node = FindNode(path);
  if (node == nullptr) {
    return NotFound("no such directory: " + std::string(path));
  }
  if (!node->is_dir) {
    return FailedPrecondition("not a directory: " + std::string(path));
  }
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    (void)child;
    names.push_back(name);
  }
  return names;
}

void SimFilesystem::WalkFilesImpl(const Node& node, std::string& path,
                                  std::vector<FileInfo>& out) const {
  for (const auto& [name, child] : node.children) {
    const size_t saved = path.size();
    path += '/';
    path += name;
    if (child.is_dir) {
      WalkFilesImpl(child, path, out);
    } else {
      FileInfo info;
      info.path = path;
      info.size = child.inode->size();
      info.content_hash = child.inode->ContentHash();
      info.link_count = child.inode->link_count();
      out.push_back(std::move(info));
    }
    path.resize(saved);
  }
}

Result<std::vector<FileInfo>> SimFilesystem::WalkFiles(
    std::string_view root) const {
  const Node* node = FindNode(root);
  if (node == nullptr) {
    return NotFound("no such path: " + std::string(root));
  }
  std::vector<FileInfo> out;
  if (!node->is_dir) {
    FileInfo info;
    info.path = std::string(root);
    info.size = node->inode->size();
    info.content_hash = node->inode->ContentHash();
    info.link_count = node->inode->link_count();
    out.push_back(std::move(info));
    return out;
  }
  std::string path(root == "/" ? "" : root);
  WalkFilesImpl(*node, path, out);
  return out;
}

Result<uint64_t> SimFilesystem::TreeSize(std::string_view root,
                                         bool unique_inodes) const {
  FLUX_ASSIGN_OR_RETURN(auto files, WalkFiles(root));
  if (!unique_inodes) {
    uint64_t total = 0;
    for (const auto& f : files) {
      total += f.size;
    }
    return total;
  }
  // Deduplicate by (hash, size); adequate for the simulation's content.
  uint64_t total = 0;
  std::vector<std::pair<uint64_t, uint64_t>> seen;
  for (const auto& f : files) {
    std::pair<uint64_t, uint64_t> key{f.content_hash, f.size};
    if (f.link_count > 1) {
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
        continue;
      }
      seen.push_back(key);
    }
    total += f.size;
  }
  return total;
}

Result<uint64_t> SimFilesystem::TreeFileCount(std::string_view root) const {
  FLUX_ASSIGN_OR_RETURN(auto files, WalkFiles(root));
  return files.size();
}

}  // namespace flux
