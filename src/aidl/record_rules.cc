#include "src/aidl/record_rules.h"

#include <algorithm>

namespace flux {

Status RecordRuleSet::RegisterService(std::string service_name,
                                      std::string_view aidl_source,
                                      bool hardware) {
  FLUX_ASSIGN_OR_RETURN(AidlInterface interface, ParseAidl(aidl_source));
  const int decoration_loc = CountDecorationLines(aidl_source);
  return RegisterNative(std::move(service_name), std::move(interface),
                        hardware, decoration_loc);
}

Status RecordRuleSet::RegisterNative(std::string service_name,
                                     AidlInterface interface, bool hardware,
                                     int handwritten_loc) {
  if (by_service_.count(service_name) > 0) {
    return AlreadyExists("rules already registered for " + service_name);
  }
  ServiceRuleInfo info;
  info.service_name = service_name;
  info.interface_name = interface.name;
  info.hardware = hardware;
  info.method_count = static_cast<int>(interface.methods.size());
  info.decoration_loc = handwritten_loc;
  info.interface = std::move(interface);
  auto [it, inserted] = by_service_.emplace(std::move(service_name),
                                            std::move(info));
  (void)inserted;
  by_interface_[it->second.interface_name] = &it->second;
  return OkStatus();
}

const RecordRule* RecordRuleSet::FindRule(std::string_view interface_name,
                                          std::string_view method) const {
  const AidlMethod* m = FindMethod(interface_name, method);
  if (m == nullptr || !m->rule.has_value()) {
    return nullptr;
  }
  return &*m->rule;
}

const AidlMethod* RecordRuleSet::FindMethod(std::string_view interface_name,
                                            std::string_view method) const {
  auto it = by_interface_.find(std::string(interface_name));
  if (it == by_interface_.end()) {
    return nullptr;
  }
  return it->second->interface.FindMethod(method);
}

bool RecordRuleSet::IsServiceRegistered(std::string_view service_name) const {
  return by_service_.count(std::string(service_name)) > 0;
}

const ServiceRuleInfo* RecordRuleSet::FindService(
    std::string_view service_name) const {
  auto it = by_service_.find(std::string(service_name));
  return it == by_service_.end() ? nullptr : &it->second;
}

std::vector<const ServiceRuleInfo*> RecordRuleSet::AllServices() const {
  std::vector<const ServiceRuleInfo*> out;
  out.reserve(by_service_.size());
  for (const auto& [name, info] : by_service_) {
    (void)name;
    out.push_back(&info);
  }
  std::sort(out.begin(), out.end(),
            [](const ServiceRuleInfo* a, const ServiceRuleInfo* b) {
              if (a->hardware != b->hardware) {
                return a->hardware;  // hardware services first
              }
              return a->service_name < b->service_name;
            });
  return out;
}

}  // namespace flux
