#include "src/aidl/record_rules.h"

#include <algorithm>

#include "src/base/interner.h"

namespace flux {

namespace {

// Parameter index of `name` in `method`, or -1 when not declared.
int ParamSlot(const AidlMethod& method, std::string_view name) {
  for (size_t i = 0; i < method.params.size(); ++i) {
    if (method.params[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

CompiledDropClause CompileClause(const AidlInterface& interface,
                                 const AidlMethod& method,
                                 const DropClause& clause) {
  Interner& interner = Interner::Global();
  CompiledDropClause compiled;

  // Victims: "this" resolves to the decorated method itself.
  std::vector<const AidlMethod*> victim_methods;
  for (const std::string& name : clause.methods) {
    if (name == "this") {
      compiled.drops_this = true;
      compiled.victim_ids.push_back(interner.Intern(method.name));
      victim_methods.push_back(&method);
    } else {
      compiled.has_other = true;
      compiled.victim_ids.push_back(interner.Intern(name));
      victim_methods.push_back(interface.FindMethod(name));
    }
  }

  // Signatures: the @if conjunction, then each @elif alternative. Slot
  // hints are resolved against the decorated method (the new call) here and
  // against each victim's declaration below.
  auto add_signature = [&](const std::vector<std::string>& sig_args) {
    const uint16_t begin = static_cast<uint16_t>(compiled.args.size());
    for (const std::string& arg : sig_args) {
      compiled.args.push_back({arg, ParamSlot(method, arg)});
    }
    compiled.sig_ranges.emplace_back(
        begin, static_cast<uint16_t>(compiled.args.size()));
  };
  if (!clause.if_args.empty()) {
    add_signature(clause.if_args);
  }
  for (const auto& alt : clause.elif_args) {
    add_signature(alt);
  }

  compiled.victim_arg_slots.resize(
      compiled.victim_ids.size() * compiled.args.size(), -1);
  for (size_t v = 0; v < victim_methods.size(); ++v) {
    if (victim_methods[v] == nullptr) {
      continue;
    }
    for (size_t k = 0; k < compiled.args.size(); ++k) {
      compiled.victim_arg_slots[v * compiled.args.size() + k] =
          ParamSlot(*victim_methods[v], compiled.args[k].name);
    }
  }
  return compiled;
}

}  // namespace

Status RecordRuleSet::RegisterService(std::string service_name,
                                      std::string_view aidl_source,
                                      bool hardware) {
  FLUX_ASSIGN_OR_RETURN(AidlInterface interface, ParseAidl(aidl_source));
  const int decoration_loc = CountDecorationLines(aidl_source);
  return RegisterNative(std::move(service_name), std::move(interface),
                        hardware, decoration_loc);
}

Status RecordRuleSet::RegisterNative(std::string service_name,
                                     AidlInterface interface, bool hardware,
                                     int handwritten_loc) {
  if (by_service_.count(service_name) > 0) {
    return AlreadyExists("rules already registered for " + service_name);
  }
  ServiceRuleInfo info;
  info.service_name = service_name;
  info.interface_name = interface.name;
  info.hardware = hardware;
  info.method_count = static_cast<int>(interface.methods.size());
  info.decoration_loc = handwritten_loc;
  info.interface = std::move(interface);
  auto [it, inserted] = by_service_.emplace(std::move(service_name),
                                            std::move(info));
  (void)inserted;
  by_interface_[it->second.interface_name] = &it->second;
  CompileInterface(it->second.interface);
  return OkStatus();
}

void RecordRuleSet::CompileInterface(const AidlInterface& interface) {
  Interner& interner = Interner::Global();
  const uint32_t interface_id = interner.Intern(interface.name);
  for (const AidlMethod& method : interface.methods) {
    if (!method.rule.has_value() || !method.rule->record) {
      continue;
    }
    CompiledRule rule;
    rule.interface_id = interface_id;
    rule.method_id = interner.Intern(method.name);
    rule.drops.reserve(method.rule->drops.size());
    for (const DropClause& clause : method.rule->drops) {
      rule.drops.push_back(CompileClause(interface, method, clause));
    }
    // Mirrors by_interface_: a re-registered interface name wins.
    compiled_[DispatchKey(interface_id, rule.method_id)] = std::move(rule);
  }
}

const RecordRule* RecordRuleSet::FindRule(std::string_view interface_name,
                                          std::string_view method) const {
  const AidlMethod* m = FindMethod(interface_name, method);
  if (m == nullptr || !m->rule.has_value()) {
    return nullptr;
  }
  return &*m->rule;
}

const AidlMethod* RecordRuleSet::FindMethod(std::string_view interface_name,
                                            std::string_view method) const {
  auto it = by_interface_.find(interface_name);
  if (it == by_interface_.end()) {
    return nullptr;
  }
  return it->second->interface.FindMethod(method);
}

bool RecordRuleSet::IsServiceRegistered(std::string_view service_name) const {
  return by_service_.find(service_name) != by_service_.end();
}

const ServiceRuleInfo* RecordRuleSet::FindService(
    std::string_view service_name) const {
  auto it = by_service_.find(service_name);
  return it == by_service_.end() ? nullptr : &it->second;
}

std::vector<const ServiceRuleInfo*> RecordRuleSet::AllServices() const {
  std::vector<const ServiceRuleInfo*> out;
  out.reserve(by_service_.size());
  for (const auto& [name, info] : by_service_) {
    (void)name;
    out.push_back(&info);
  }
  std::sort(out.begin(), out.end(),
            [](const ServiceRuleInfo* a, const ServiceRuleInfo* b) {
              if (a->hardware != b->hardware) {
                return a->hardware;  // hardware services first
              }
              return a->service_name < b->service_name;
            });
  return out;
}

}  // namespace flux
