// AIDL parser with Flux decoration extensions (§3.2, Table 1).
//
// Flux extends the Android Interface Definition Language so framework
// developers can annotate service interface methods with record/replay
// semantics:
//
//   @record                       record calls to the decorated method
//   @drop [method, ...];          drop previous matching calls from the log
//   @if   [arg, ...];             drop only when all named args match
//   @elif [arg, ...];             alternative drop signature
//   @replayproxy qualified.name;  call a proxy instead of replaying verbatim
//   this                          keyword for the decorated method itself
//
// In Android, AIDL generates the marshalling code and (with Flux) the calls
// into the record function. In this reproduction, parsing produces a
// RecordRuleSet that the RecordEngine interprets at transaction time — the
// same effect as generated code, without a codegen step.
#ifndef FLUX_SRC_AIDL_AIDL_PARSER_H_
#define FLUX_SRC_AIDL_AIDL_PARSER_H_

#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"

namespace flux {

struct AidlParameter {
  std::string direction;  // "", "in", "out", "inout"
  std::string type;
  std::string name;

  bool operator==(const AidlParameter&) const = default;
};

// One drop clause: which prior calls become stale, under which signature.
struct DropClause {
  // Method names whose prior calls are dropped; "this" refers to the
  // decorated method.
  std::vector<std::string> methods;
  // Conjunction of argument names that must match between the new call and
  // a prior call for the prior call to be dropped. Empty = unconditional.
  std::vector<std::string> if_args;
  // Alternative signatures (@elif ...), each a conjunction.
  std::vector<std::vector<std::string>> elif_args;

  bool operator==(const DropClause&) const = default;
};

struct RecordRule {
  bool record = false;
  std::vector<DropClause> drops;
  std::string replay_proxy;  // qualified proxy name, empty if none
  // True when the decorated call itself is consumed by a matching drop
  // ("this" in the drop list) — i.e. the new call is not recorded if it only
  // cancels earlier state.
  bool DropsThis() const;

  bool operator==(const RecordRule&) const = default;
};

struct AidlMethod {
  std::string return_type;
  std::string name;
  std::vector<AidlParameter> params;
  bool oneway = false;
  std::optional<RecordRule> rule;
};

struct AidlInterface {
  std::string name;
  std::vector<AidlMethod> methods;

  const AidlMethod* FindMethod(std::string_view method_name) const;
  size_t MethodCount() const { return methods.size(); }
};

// Parses one interface definition. Errors carry line numbers.
Result<AidlInterface> ParseAidl(std::string_view source);

// Counts the lines of Flux decoration code in an AIDL source: lines whose
// content belongs to @-decorations (the measure reported in Table 2).
int CountDecorationLines(std::string_view source);

}  // namespace flux

#endif  // FLUX_SRC_AIDL_AIDL_PARSER_H_
