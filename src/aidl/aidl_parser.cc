#include "src/aidl/aidl_parser.h"

#include <cctype>

#include "src/base/strings.h"

namespace flux {

namespace {

enum class TokenKind {
  kIdent,
  kAt,      // @
  kLBrace,  // {
  kRBrace,  // }
  kLParen,  // (
  kRParen,  // )
  kSemi,    // ;
  kComma,   // ,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (pos_ < source_.size()) {
      const char c = source_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\\') {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < source_.size()) {
        if (source_[pos_ + 1] == '/') {
          while (pos_ < source_.size() && source_[pos_] != '\n') {
            ++pos_;
          }
          continue;
        }
        if (source_[pos_ + 1] == '*') {
          pos_ += 2;
          while (pos_ + 1 < source_.size() &&
                 !(source_[pos_] == '*' && source_[pos_ + 1] == '/')) {
            if (source_[pos_] == '\n') {
              ++line_;
            }
            ++pos_;
          }
          pos_ += 2;
          continue;
        }
      }
      switch (c) {
        case '@':
          tokens.push_back({TokenKind::kAt, "@", line_});
          ++pos_;
          continue;
        case '{':
          tokens.push_back({TokenKind::kLBrace, "{", line_});
          ++pos_;
          continue;
        case '}':
          tokens.push_back({TokenKind::kRBrace, "}", line_});
          ++pos_;
          continue;
        case '(':
          tokens.push_back({TokenKind::kLParen, "(", line_});
          ++pos_;
          continue;
        case ')':
          tokens.push_back({TokenKind::kRParen, ")", line_});
          ++pos_;
          continue;
        case ';':
          tokens.push_back({TokenKind::kSemi, ";", line_});
          ++pos_;
          continue;
        case ',':
          tokens.push_back({TokenKind::kComma, ",", line_});
          ++pos_;
          continue;
        default:
          break;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const size_t start = pos_;
        int angle_depth = 0;
        while (pos_ < source_.size()) {
          const char d = source_[pos_];
          if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
              d == '.') {
            ++pos_;
          } else if (d == '<') {
            ++angle_depth;
            ++pos_;
          } else if (d == '>' && angle_depth > 0) {
            --angle_depth;
            ++pos_;
          } else if (d == ',' && angle_depth > 0) {
            // Commas separate type parameters inside generics.
            ++pos_;
          } else if (d == '[' && pos_ + 1 < source_.size() &&
                     source_[pos_ + 1] == ']') {
            pos_ += 2;  // array suffix
          } else {
            break;
          }
        }
        tokens.push_back(
            {TokenKind::kIdent, std::string(source_.substr(start, pos_ - start)),
             line_});
        continue;
      }
      return Corrupt(StrFormat("aidl: unexpected character '%c' at line %d", c,
                               line_));
    }
    tokens.push_back({TokenKind::kEnd, "", line_});
    return tokens;
  }

 private:
  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<AidlInterface> Run() {
    FLUX_RETURN_IF_ERROR(ExpectIdent("interface"));
    AidlInterface interface;
    FLUX_ASSIGN_OR_RETURN(interface.name, TakeIdent());
    FLUX_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    while (!Peek(TokenKind::kRBrace)) {
      if (Peek(TokenKind::kEnd)) {
        return Corrupt("aidl: unexpected end of input inside interface body");
      }
      FLUX_ASSIGN_OR_RETURN(AidlMethod method, ParseMember());
      interface.methods.push_back(std::move(method));
    }
    FLUX_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    return interface;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool Peek(TokenKind kind) const { return Cur().kind == kind; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    }
  }

  Status Expect(TokenKind kind) {
    if (!Peek(kind)) {
      return Corrupt(StrFormat("aidl: unexpected token '%s' at line %d",
                               Cur().text.c_str(), Cur().line));
    }
    Advance();
    return OkStatus();
  }

  Status ExpectIdent(std::string_view word) {
    if (!Peek(TokenKind::kIdent) || Cur().text != word) {
      return Corrupt(StrFormat("aidl: expected '%.*s' at line %d, got '%s'",
                               static_cast<int>(word.size()), word.data(),
                               Cur().line, Cur().text.c_str()));
    }
    Advance();
    return OkStatus();
  }

  Result<std::string> TakeIdent() {
    if (!Peek(TokenKind::kIdent)) {
      return Corrupt(StrFormat("aidl: expected identifier at line %d, got '%s'",
                               Cur().line, Cur().text.c_str()));
    }
    std::string text = Cur().text;
    Advance();
    return text;
  }

  // ident (, ident)* terminated by ';'
  Result<std::vector<std::string>> ParseNameList() {
    std::vector<std::string> names;
    for (;;) {
      FLUX_ASSIGN_OR_RETURN(std::string name, TakeIdent());
      names.push_back(std::move(name));
      if (Peek(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    FLUX_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
    return names;
  }

  // Parses one "@record"-introduced decoration; merges into `rule`.
  Status ParseRecordDecoration(RecordRule& rule) {
    FLUX_RETURN_IF_ERROR(Expect(TokenKind::kAt));
    FLUX_RETURN_IF_ERROR(ExpectIdent("record"));
    rule.record = true;
    if (!Peek(TokenKind::kLBrace)) {
      return OkStatus();  // bare "@record"
    }
    Advance();  // consume '{'
    DropClause clause;
    bool has_clause = false;
    while (!Peek(TokenKind::kRBrace)) {
      FLUX_RETURN_IF_ERROR(Expect(TokenKind::kAt));
      FLUX_ASSIGN_OR_RETURN(std::string keyword, TakeIdent());
      if (keyword == "drop") {
        FLUX_ASSIGN_OR_RETURN(auto names, ParseNameList());
        clause.methods.insert(clause.methods.end(), names.begin(),
                              names.end());
        has_clause = true;
      } else if (keyword == "if") {
        FLUX_ASSIGN_OR_RETURN(clause.if_args, ParseNameList());
        has_clause = true;
      } else if (keyword == "elif") {
        FLUX_ASSIGN_OR_RETURN(auto names, ParseNameList());
        clause.elif_args.push_back(std::move(names));
        has_clause = true;
      } else if (keyword == "replayproxy") {
        FLUX_ASSIGN_OR_RETURN(rule.replay_proxy, TakeIdent());
        FLUX_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
      } else {
        return Corrupt(StrFormat("aidl: unknown decoration '@%s' at line %d",
                                 keyword.c_str(), Cur().line));
      }
    }
    FLUX_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    if (has_clause) {
      rule.drops.push_back(std::move(clause));
    }
    return OkStatus();
  }

  Result<AidlMethod> ParseMember() {
    AidlMethod method;
    // Decorations.
    while (Peek(TokenKind::kAt)) {
      if (!method.rule.has_value()) {
        method.rule = RecordRule{};
      }
      FLUX_RETURN_IF_ERROR(ParseRecordDecoration(*method.rule));
    }
    // [oneway] type name ( params ) ;
    FLUX_ASSIGN_OR_RETURN(std::string first, TakeIdent());
    if (first == "oneway") {
      method.oneway = true;
      FLUX_ASSIGN_OR_RETURN(first, TakeIdent());
    }
    method.return_type = std::move(first);
    FLUX_ASSIGN_OR_RETURN(method.name, TakeIdent());
    FLUX_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    while (!Peek(TokenKind::kRParen)) {
      AidlParameter param;
      FLUX_ASSIGN_OR_RETURN(std::string word, TakeIdent());
      if (word == "in" || word == "out" || word == "inout") {
        param.direction = std::move(word);
        FLUX_ASSIGN_OR_RETURN(word, TakeIdent());
      }
      param.type = std::move(word);
      FLUX_ASSIGN_OR_RETURN(param.name, TakeIdent());
      method.params.push_back(std::move(param));
      if (Peek(TokenKind::kComma)) {
        Advance();
      }
    }
    FLUX_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    FLUX_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
    return method;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

bool RecordRule::DropsThis() const {
  for (const auto& clause : drops) {
    for (const auto& method : clause.methods) {
      if (method == "this") {
        return true;
      }
    }
  }
  return false;
}

const AidlMethod* AidlInterface::FindMethod(
    std::string_view method_name) const {
  for (const auto& method : methods) {
    if (method.name == method_name) {
      return &method;
    }
  }
  return nullptr;
}

Result<AidlInterface> ParseAidl(std::string_view source) {
  Lexer lexer(source);
  FLUX_ASSIGN_OR_RETURN(auto tokens, lexer.Run());
  Parser parser(std::move(tokens));
  return parser.Run();
}

int CountDecorationLines(std::string_view source) {
  int count = 0;
  int block_depth = 0;  // inside @record { ... }
  for (const auto& raw_line : StrSplit(source, '\n')) {
    const std::string_view line = StrTrim(raw_line);
    if (line.empty()) {
      continue;
    }
    bool counted = false;
    if (block_depth > 0) {
      ++count;
      counted = true;
    } else if (line[0] == '@') {
      ++count;
      counted = true;
    }
    (void)counted;
    // Track block depth from '@record {' openings and matching closes.
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '{' &&
          (block_depth > 0 || (line[0] == '@' && line.find("@record") == 0))) {
        ++block_depth;
      } else if (line[i] == '}' && block_depth > 0) {
        --block_depth;
      }
    }
  }
  return count;
}

}  // namespace flux
