// Compiled record/replay rules.
//
// A RecordRuleSet aggregates the decorated interfaces of every system
// service on a device. The RecordEngine consults it on each Binder
// transaction to decide whether to record the call and which prior log
// entries become stale; the ReplayEngine consults it for @replayproxy
// bindings. Table 2's per-service method/decoration counts are computed
// from the registered sources.
#ifndef FLUX_SRC_AIDL_RECORD_RULES_H_
#define FLUX_SRC_AIDL_RECORD_RULES_H_

#include <map>
#include <string>
#include <vector>

#include "src/aidl/aidl_parser.h"
#include "src/base/result.h"

namespace flux {

struct ServiceRuleInfo {
  std::string service_name;     // ServiceManager registration name
  std::string interface_name;   // AIDL interface name
  bool hardware = false;        // manages a hardware device (Table 2 split)
  int method_count = 0;
  int decoration_loc = 0;
  AidlInterface interface;
};

class RecordRuleSet {
 public:
  // Parses `aidl_source` and registers its rules for `service_name`.
  Status RegisterService(std::string service_name, std::string_view aidl_source,
                         bool hardware);

  // Registers rules authored directly (the SensorService case: native C++
  // services have no AIDL to decorate, rules are hand-written, §3.2). The
  // hand-written LOC figure is supplied by the author.
  Status RegisterNative(std::string service_name, AidlInterface interface,
                        bool hardware, int handwritten_loc);

  // Rule lookup by interface + method; nullptr when not decorated.
  const RecordRule* FindRule(std::string_view interface_name,
                             std::string_view method) const;
  const AidlMethod* FindMethod(std::string_view interface_name,
                               std::string_view method) const;

  bool IsServiceRegistered(std::string_view service_name) const;
  const ServiceRuleInfo* FindService(std::string_view service_name) const;

  // Table 2 rows, sorted by service name, hardware services first.
  std::vector<const ServiceRuleInfo*> AllServices() const;

 private:
  std::map<std::string, ServiceRuleInfo> by_service_;
  std::map<std::string, const ServiceRuleInfo*> by_interface_;
};

}  // namespace flux

#endif  // FLUX_SRC_AIDL_RECORD_RULES_H_
