// Compiled record/replay rules.
//
// A RecordRuleSet aggregates the decorated interfaces of every system
// service on a device. The RecordEngine consults it on each Binder
// transaction to decide whether to record the call and which prior log
// entries become stale; the ReplayEngine consults it for @replayproxy
// bindings. Table 2's per-service method/decoration counts are computed
// from the registered sources.
//
// Registration also *compiles* every @record rule into a fast-lane form
// (§3.2 record path): interface and method names are interned to dense ids
// (src/base/interner.h), rule dispatch becomes a single hash probe on
// (interface_id << 32 | method_id), and each @drop clause is resolved once
// into a CompiledDropClause — victim-method id array, drops-this/has-other
// flags, and @if/@elif argument lists pre-resolved to parcel-slot hints —
// so the per-transaction path loops over plain arrays and allocates
// nothing. The string-keyed lookups remain for the replay path and tools.
#ifndef FLUX_SRC_AIDL_RECORD_RULES_H_
#define FLUX_SRC_AIDL_RECORD_RULES_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/aidl/aidl_parser.h"
#include "src/base/result.h"

namespace flux {

struct ServiceRuleInfo {
  std::string service_name;     // ServiceManager registration name
  std::string interface_name;   // AIDL interface name
  bool hardware = false;        // manages a hardware device (Table 2 split)
  int method_count = 0;
  int decoration_loc = 0;
  AidlInterface interface;
};

// One @drop clause, resolved at registration time so transaction-time
// evaluation is allocation-free.
struct CompiledDropClause {
  // One @if/@elif signature argument. `caller_slot` is the argument's
  // parameter index in the *decorated* method (a hint into the new call's
  // parcel; -1 when the name is not a declared parameter).
  struct Arg {
    std::string name;
    int caller_slot = -1;
  };

  // Interned ids of the methods whose prior calls this clause drops;
  // "this" is resolved to the decorated method's own id.
  std::vector<uint32_t> victim_ids;
  bool drops_this = false;  // "this" appeared in the drop list
  bool has_other = false;   // a method other than "this" appeared

  // All signature arguments, flattened: @if first, then each @elif, with
  // sig_ranges holding each signature's [begin, end) into `args`. Empty
  // sig_ranges means the drop is unconditional.
  std::vector<Arg> args;
  std::vector<std::pair<uint16_t, uint16_t>> sig_ranges;

  // Per-victim slot hints: victim_arg_slots[v * args.size() + k] is the
  // parameter index of args[k].name in victim v's method declaration, or
  // -1 when unknown (undeclared victim or parameter).
  std::vector<int> victim_arg_slots;

  // Index of `method_id` in victim_ids, or -1.
  int VictimIndex(uint32_t method_id) const {
    for (size_t i = 0; i < victim_ids.size(); ++i) {
      if (victim_ids[i] == method_id) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

// A @record rule ready for the transaction fast lane. Only methods with
// `record` set compile (a decorated-but-unrecorded method behaves exactly
// like an undecorated one at transaction time).
struct CompiledRule {
  uint32_t interface_id = 0;
  uint32_t method_id = 0;
  std::vector<CompiledDropClause> drops;
};

class RecordRuleSet {
 public:
  // Parses `aidl_source` and registers its rules for `service_name`.
  Status RegisterService(std::string service_name, std::string_view aidl_source,
                         bool hardware);

  // Registers rules authored directly (the SensorService case: native C++
  // services have no AIDL to decorate, rules are hand-written, §3.2). The
  // hand-written LOC figure is supplied by the author.
  Status RegisterNative(std::string service_name, AidlInterface interface,
                        bool hardware, int handwritten_loc);

  // Rule lookup by interface + method; nullptr when not decorated.
  const RecordRule* FindRule(std::string_view interface_name,
                             std::string_view method) const;
  const AidlMethod* FindMethod(std::string_view interface_name,
                               std::string_view method) const;

  // Fast-lane dispatch: single hash probe on interned ids. nullptr when the
  // method is undecorated or its rule does not record.
  const CompiledRule* FindCompiled(uint32_t interface_id,
                                   uint32_t method_id) const {
    auto it = compiled_.find(DispatchKey(interface_id, method_id));
    return it == compiled_.end() ? nullptr : &it->second;
  }

  bool IsServiceRegistered(std::string_view service_name) const;
  const ServiceRuleInfo* FindService(std::string_view service_name) const;

  // Table 2 rows, sorted by service name, hardware services first.
  std::vector<const ServiceRuleInfo*> AllServices() const;

 private:
  static uint64_t DispatchKey(uint32_t interface_id, uint32_t method_id) {
    return (static_cast<uint64_t>(interface_id) << 32) | method_id;
  }

  void CompileInterface(const AidlInterface& interface);

  // Transparent comparators: string_view lookups probe without building
  // temporary std::strings.
  std::map<std::string, ServiceRuleInfo, std::less<>> by_service_;
  std::map<std::string, const ServiceRuleInfo*, std::less<>> by_interface_;
  std::unordered_map<uint64_t, CompiledRule> compiled_;
};

}  // namespace flux

#endif  // FLUX_SRC_AIDL_RECORD_RULES_H_
