// CRIA: Checkpoint/Restore In Android (§3.3).
//
// Extends CRIU-style process checkpointing with the Android-specific state
// an app carries:
//  - the Binder handle table, references and pending transaction buffers,
//    with every handle *classified* at checkpoint time: references to named
//    system services (re-bound through the guest ServiceManager under the
//    same handle numbers), app-internal connections (both ends restored),
//    anonymous system-owned objects like SensorEventConnections (deferred to
//    Adaptive Replay's proxies), and external non-system connections
//    (migration refused, §3.3);
//  - Android driver state: logger (none to save), ashmem regions, wakelocks
//    and alarms (held only via services -> covered by record/replay), and
//    pmem (must be empty: preparation frees device-specific memory);
//  - memory: anonymous/dirty segments are serialized with their bytes;
//    read-only file-backed segments are re-mapped from the paired
//    filesystem; vendor-library segments must be gone (eglUnload).
//
// Checkpoint *requires* a prepared process: no GL contexts, no vendor
// libraries, no pmem — it fails loudly otherwise, because blindly saving
// device-specific state is exactly what breaks cross-device restore.
//
// Beyond the paper's prototype, CRIA here supports *process trees*
// (CheckpointTree / multi-pid restore), implementing the paper's §3.4
// "modest additional engineering effort" note: multi-process apps like
// Facebook migrate when the extension is enabled.
#ifndef FLUX_SRC_CRIA_CRIA_H_
#define FLUX_SRC_CRIA_CRIA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/archive.h"
#include "src/device/device.h"
#include "src/flux/trace.h"
#include "src/framework/activity_thread.h"

namespace flux {

enum class HandleClass : uint8_t {
  kService = 0,       // node registered with the ServiceManager
  kAppInternal,       // node owned by the app's own process(es)
  kAnonymousSystem,   // unnamed node owned by a system process
  kExternal,          // anything else: unmigratable
};

struct CheckpointedHandle {
  uint64_t handle = 0;
  uint64_t node_id = 0;
  int strong_refs = 0;
  int weak_refs = 0;
  HandleClass cls = HandleClass::kExternal;
  std::string service_name;  // for kService
  std::string interface;
};

struct CriaStats {
  uint64_t memory_bytes = 0;   // serialized segment content
  uint64_t image_bytes = 0;    // total serialized image
  int processes = 0;
  int segments = 0;
  int file_mappings = 0;       // re-mapped, not serialized
  int fds = 0;
  int handles = 0;
  int pending_transactions = 0;
  int threads = 0;
};

struct CriaCheckpointResult {
  Bytes image;  // uncompressed serialized image
  CriaStats stats;
};

// A CRID delta image: only the segments dirtied since a given epoch, plus
// the new checkpoint time. Applied to a full base image with
// Cria::ApplyIncremental.
struct CriaIncrementalResult {
  Bytes delta;
  uint64_t epoch = 0;  // the dirty epoch this delta captured
  CriaStats stats;     // memory_bytes/segments count dirty segments only
};

struct CriaRestoreOptions {
  // Filesystem prefix the restored process is jailed to; file-backed
  // mappings resolve under it first, then the guest's own tree (identical
  // /system files are hard-linked there).
  std::string jail_root;
  // Optional: records a cria/restore span and cria.* counters.
  Tracer* trace = nullptr;
};

// Everything the reintegration phase needs from a restored process tree.
struct CriaRestoredApp {
  Pid pid = kInvalidPid;        // the main (activity-hosting) process
  Pid virtual_pid = kInvalidPid;
  Uid uid = -1;
  std::string package;
  SimTime checkpoint_time = 0;
  std::shared_ptr<ActivityThread> thread;
  std::vector<Pid> all_pids;    // main first, then helpers

  // Old (home) node id -> new (guest) node id, for app-owned objects.
  std::map<uint64_t, uint64_t> node_mapping;
  // The main process's old handle table (handle -> old node id).
  std::map<uint64_t, uint64_t> handle_to_old_node;

  // Handles to anonymous system objects: installed by replay proxies.
  struct DeferredHandle {
    uint64_t handle = 0;
    uint64_t old_node = 0;
    std::string interface;
  };
  std::vector<DeferredHandle> deferred_handles;

  // Unix-socket descriptors reserved by number for dup2 during replay.
  struct ReservedSocket {
    Fd fd = kInvalidFd;
    std::string peer_tag;
    uint64_t connection_id = 0;
  };
  std::vector<ReservedSocket> reserved_sockets;

  std::vector<std::string> activity_tokens;

  // Keep-alive for generic app-owned Binder objects recreated at restore
  // (listeners, tokens — Dalvik objects that in real CRIU come back with
  // the memory image).
  std::vector<std::shared_ptr<BinderObject>> restored_stubs;
};

struct CriaCheckOptions {
  // Extension beyond the paper's prototype: checkpoint the whole process
  // tree of a multi-process app (§3.4 future work).
  bool allow_multiprocess = false;
};

class Cria {
 public:
  // Checkpoints the single process `pid` (the paper's prototype behaviour).
  // A non-null tracer records a cria/checkpoint span and cria.* counters.
  static Result<CriaCheckpointResult> Checkpoint(Device& device, Pid pid,
                                                 const ActivityThread& thread,
                                                 Tracer* trace = nullptr);

  // Extension: checkpoints a whole process tree. `pids.front()` must be the
  // main (activity-hosting) process owning `thread`.
  static Result<CriaCheckpointResult> CheckpointTree(
      Device& device, const std::vector<Pid>& pids,
      const ActivityThread& thread, Tracer* trace = nullptr);

  // Restores an image on `guest` inside a fresh private PID namespace,
  // re-binding service handles through the guest's ServiceManager.
  static Result<CriaRestoredApp> Restore(Device& guest, ByteSpan image,
                                         const CriaRestoreOptions& options);

  // Preflight used by migration: classifies the process's Binder handles
  // and reports the first blocking condition, if any.
  static Status CheckMigratable(Device& device, Pid pid,
                                const CriaCheckOptions& options = {});

  // ----- incremental checkpoints (pre-copy, DESIGN.md §10) -----

  // Starts a new dirty epoch across every process of the app: all address
  // spaces advance to one common write generation, which is returned.
  // Segments written from this point on are "dirty since" the epoch.
  static uint64_t BeginDirtyEpoch(Device& device, const std::vector<Pid>& pids);

  // Checkpointable bytes dirtied since `epoch`, summed over the tree.
  static uint64_t DirtyBytesSince(Device& device, const std::vector<Pid>& pids,
                                  uint64_t epoch);

  // Serializes only the segments dirtied since `epoch` into a CRID delta
  // image. This is a memory pre-dump: unlike CheckpointTree it does not
  // require a *prepared* process (it never touches GL, fd, or Binder
  // state), so pre-copy rounds can cut deltas while the app keeps running.
  static Result<CriaIncrementalResult> CheckpointIncremental(
      Device& device, const std::vector<Pid>& pids, uint64_t epoch,
      Tracer* trace = nullptr);

  // Patches a full CRIA `base_image` with a CRID `delta`, returning the
  // byte stream a full checkpoint taken at the delta's cut would have
  // produced — provided only memory content (and the clock) changed
  // between the two cuts; the migration engine's final stop-and-copy is
  // always a full image, so any structural drift is caught there. Fails
  // kUnsupported when a dirty segment changed size or was mapped after the
  // base cut (the caller falls back to a full checkpoint).
  static Result<Bytes> ApplyIncremental(ByteSpan base_image, ByteSpan delta);
};

std::string_view HandleClassName(HandleClass cls);

}  // namespace flux

#endif  // FLUX_SRC_CRIA_CRIA_H_
