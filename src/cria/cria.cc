#include "src/cria/cria.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace flux {

namespace {

constexpr uint32_t kImageMagic = 0x43524941;  // "CRIA"
constexpr uint32_t kImageVersion = 2;         // v2: process trees
constexpr uint32_t kDeltaMagic = 0x43524944;  // "CRID": incremental delta
constexpr uint32_t kDeltaVersion = 1;

bool KindCheckpointed(SegmentKind kind) {
  MemorySegment probe;
  probe.kind = kind;
  return probe.checkpointed();
}

HandleClass ClassifyHandle(Device& device, Uid app_uid, uint64_t node_id) {
  BinderDriver& binder = device.binder();
  if (!binder.NodeServiceName(node_id).empty()) {
    return HandleClass::kService;
  }
  const Pid owner = binder.NodeOwner(node_id);
  if (owner == kInvalidPid) {
    // Dead node: treat as app-internal debris; it will simply not resolve.
    return HandleClass::kAppInternal;
  }
  const SimProcess* owner_process = device.kernel().FindProcess(owner);
  if (owner_process != nullptr && owner_process->uid() == app_uid) {
    return HandleClass::kAppInternal;
  }
  if (owner == device.system_server().pid() ||
      (owner_process != nullptr && owner_process->uid() == kSystemUid) ||
      (owner_process != nullptr && owner_process->uid() == 0)) {
    return HandleClass::kAnonymousSystem;
  }
  return HandleClass::kExternal;
}

std::vector<CheckpointedHandle> ClassifyAllHandles(Device& device, Pid pid,
                                                   Uid uid) {
  std::vector<CheckpointedHandle> out;
  for (const BinderHandleEntry& entry : device.binder().HandleTableOf(pid)) {
    CheckpointedHandle handle;
    handle.handle = entry.handle;
    handle.node_id = entry.node_id;
    handle.strong_refs = entry.strong_refs;
    handle.weak_refs = entry.weak_refs;
    handle.cls = ClassifyHandle(device, uid, entry.node_id);
    handle.service_name =
        std::string(device.binder().NodeServiceName(entry.node_id));
    handle.interface =
        std::string(device.binder().NodeInterface(entry.node_id));
    out.push_back(std::move(handle));
  }
  return out;
}

// Serializes everything process-local: identity, threads, memory, fds,
// classified handles, pending async transactions, owned Binder nodes.
Status SerializeProcess(Device& device, Pid pid, ArchiveWriter& out,
                        CriaStats& stats) {
  SimProcess* process = device.kernel().FindProcess(pid);
  if (process == nullptr) {
    return NotFound(StrFormat("no process %d", pid));
  }
  // The process must be *prepared*: device-specific state shed (§3.3).
  if (!device.egl().ContextsOf(pid).empty()) {
    return FailedPrecondition(
        "process still owns GL contexts; preparation did not shed them");
  }
  if (process->address_space().HasKind(SegmentKind::kVendorLibrary)) {
    return FailedPrecondition(
        "vendor GL library still mapped; eglUnload required before "
        "checkpoint");
  }
  if (device.kernel().pmem().BytesOf(pid) != 0) {
    return FailedPrecondition(
        "process still holds pmem (device-specific contiguous memory)");
  }

  out.PutString(process->name());
  out.PutI64(process->virtual_pid());
  ++stats.processes;

  // ----- threads -----
  ArchiveWriter threads;
  threads.PutU64(process->threads().size());
  for (const SimThread& t : process->threads()) {
    threads.PutI64(t.tid);
    threads.PutString(t.name);
    threads.PutU8(static_cast<uint8_t>(t.state));
    threads.PutU64(t.stack_size);
    threads.PutI64(t.priority);
    ++stats.threads;
  }
  out.PutSection(threads);

  // ----- memory segments -----
  ArchiveWriter memory;
  const auto& segments = process->address_space().segments();
  memory.PutU64(segments.size());
  for (const MemorySegment& segment : segments) {
    if (segment.kind == SegmentKind::kPmem) {
      return FailedPrecondition("pmem segment present at checkpoint");
    }
    memory.PutString(segment.name);
    memory.PutU8(static_cast<uint8_t>(segment.kind));
    memory.PutU64(segment.start);
    if (segment.checkpointed()) {
      memory.PutBytes(
          ByteSpan(segment.content.data(), segment.content.size()));
      stats.memory_bytes += segment.content.size();
      ++stats.segments;
    } else {
      memory.PutBytes({});
      memory.PutU64(segment.mapped_size);
      memory.PutString(segment.backing_path);
      ++stats.file_mappings;
    }
  }
  out.PutSection(memory);

  // ----- file descriptors -----
  ArchiveWriter fds;
  fds.PutU64(process->fd_table().size());
  for (const auto& [fd, object] : process->fd_table()) {
    fds.PutI64(fd);
    fds.PutU8(static_cast<uint8_t>(object->kind()));
    switch (object->kind()) {
      case FdKind::kRegularFile: {
        const auto* file = static_cast<const RegularFileFd*>(object.get());
        fds.PutString(file->path());
        fds.PutU64(file->offset());
        fds.PutBool(file->writable());
        break;
      }
      case FdKind::kUnixSocket: {
        const auto* socket = static_cast<const UnixSocketFd*>(object.get());
        fds.PutString(socket->peer_tag());
        fds.PutU64(socket->connection_id());
        break;
      }
      case FdKind::kAshmem: {
        const auto* region = static_cast<const AshmemFd*>(object.get());
        fds.PutString(region->name());
        fds.PutU64(region->size());
        break;
      }
      case FdKind::kLogger: {
        const auto* logger = static_cast<const LoggerFd*>(object.get());
        fds.PutString(logger->log_name());
        break;
      }
      case FdKind::kBinder:
        break;  // per-process Binder state captured below
      case FdKind::kPmem:
        return FailedPrecondition("pmem fd present at checkpoint");
      default:
        return Unsupported(StrFormat(
            "cannot checkpoint fd kind %s",
            std::string(FdKindName(object->kind())).c_str()));
    }
    ++stats.fds;
  }
  out.PutSection(fds);

  // ----- Binder handle table (classified) -----
  ArchiveWriter handles;
  const auto classified = ClassifyAllHandles(device, pid, process->uid());
  handles.PutU64(classified.size());
  for (const CheckpointedHandle& handle : classified) {
    handles.PutU64(handle.handle);
    handles.PutU64(handle.node_id);
    handles.PutI64(handle.strong_refs);
    handles.PutI64(handle.weak_refs);
    handles.PutU8(static_cast<uint8_t>(handle.cls));
    handles.PutString(handle.service_name);
    handles.PutString(handle.interface);
    ++stats.handles;
  }
  out.PutSection(handles);

  // ----- pending async transactions (Binder buffers) -----
  ArchiveWriter pending;
  const auto& queue = device.binder().PendingFor(pid);
  pending.PutU64(queue.size());
  for (const PendingAsyncTransaction& txn : queue) {
    pending.PutU64(txn.node_id);
    pending.PutString(txn.method);
    ArchiveWriter args;
    txn.args.Serialize(args);
    pending.PutSection(args);
    ++stats.pending_transactions;
  }
  out.PutSection(pending);

  // ----- app-owned Binder nodes (internal connections, §3.3) -----
  ArchiveWriter owned;
  const auto owned_nodes = device.binder().NodesOwnedBy(pid);
  owned.PutU64(owned_nodes.size());
  for (const auto& [node_id, interface] : owned_nodes) {
    owned.PutU64(node_id);
    owned.PutString(interface);
  }
  out.PutSection(owned);
  return OkStatus();
}

// A generic stand-in for an app-owned Binder object whose real
// implementation lives in the restored memory image.
class RestoredStub : public BinderObject {
 public:
  explicit RestoredStub(std::string interface)
      : interface_(std::move(interface)) {}
  std::string_view interface_name() const override { return interface_; }
  Result<Parcel> OnTransact(std::string_view, const Parcel&,
                            const BinderCallContext&) override {
    return Parcel();
  }

 private:
  std::string interface_;
};

struct PendingInternalHandle {
  Pid new_pid;
  uint64_t handle;
  uint64_t old_node;
  int strong;
  int weak;
};

struct PendingTxn {
  Pid new_pid;
  uint64_t old_node;
  std::string method;
  Parcel args;
};

// Deserializes one process section into a fresh process inside `ns`.
// Collects cross-process fixups into the out-params.
Result<SimProcess*> RestoreProcess(
    Device& guest, ArchiveReader& in, int ns, Uid uid,
    const CriaRestoreOptions& options, bool is_main, CriaRestoredApp& restored,
    std::vector<std::pair<uint64_t, std::string>>& owned_nodes_out,
    std::vector<PendingInternalHandle>& internal_handles,
    std::vector<PendingTxn>& pending_txns) {
  std::string process_name;
  int64_t virtual_pid = -1;
  FLUX_RETURN_IF_ERROR(in.GetString(process_name));
  FLUX_RETURN_IF_ERROR(in.GetI64(virtual_pid));

  FLUX_ASSIGN_OR_RETURN(SimProcess * process,
                        guest.kernel().CreateProcessInNamespace(
                            process_name, uid, ns,
                            static_cast<Pid>(virtual_pid)));
  process->set_jail_root(options.jail_root);

  // ----- threads -----
  ArchiveReader threads({});
  FLUX_RETURN_IF_ERROR(in.GetSection(threads));
  uint64_t thread_count = 0;
  FLUX_RETURN_IF_ERROR(threads.GetU64(thread_count));
  for (uint64_t i = 0; i < thread_count; ++i) {
    int64_t tid = 0;
    std::string name;
    uint8_t state = 0;
    uint64_t stack_size = 0;
    int64_t priority = 0;
    FLUX_RETURN_IF_ERROR(threads.GetI64(tid));
    FLUX_RETURN_IF_ERROR(threads.GetString(name));
    FLUX_RETURN_IF_ERROR(threads.GetU8(state));
    FLUX_RETURN_IF_ERROR(threads.GetU64(stack_size));
    FLUX_RETURN_IF_ERROR(threads.GetI64(priority));
    SimThread* t = nullptr;
    if (i == 0) {
      // CreateProcess spawned the main thread; align its attributes.
      t = process->FindThread(1);
      if (t != nullptr) {
        t->name = name;
        t->stack_size = stack_size;
      }
    } else {
      const Tid new_tid = process->SpawnThread(name, stack_size);
      t = process->FindThread(new_tid);
    }
    if (t != nullptr) {
      t->state = static_cast<ThreadState>(state);
      t->priority = static_cast<int>(priority);
    }
  }

  // ----- memory -----
  ArchiveReader memory({});
  FLUX_RETURN_IF_ERROR(in.GetSection(memory));
  uint64_t segment_count = 0;
  FLUX_RETURN_IF_ERROR(memory.GetU64(segment_count));
  for (uint64_t i = 0; i < segment_count; ++i) {
    MemorySegment segment;
    uint8_t kind = 0;
    FLUX_RETURN_IF_ERROR(memory.GetString(segment.name));
    FLUX_RETURN_IF_ERROR(memory.GetU8(kind));
    segment.kind = static_cast<SegmentKind>(kind);
    uint64_t old_start = 0;
    FLUX_RETURN_IF_ERROR(memory.GetU64(old_start));
    FLUX_RETURN_IF_ERROR(memory.GetBytes(segment.content));
    if (!segment.checkpointed()) {
      FLUX_RETURN_IF_ERROR(memory.GetU64(segment.mapped_size));
      FLUX_RETURN_IF_ERROR(memory.GetString(segment.backing_path));
      // Re-map from the paired filesystem: the jail view first, then the
      // guest's own tree (identical /system files are hard-linked there).
      // The segment keeps its canonical path — the process is jailed, so
      // path resolution happens relative to the jail; keeping it canonical
      // lets a later migration re-resolve on yet another device.
      const std::string jailed = options.jail_root + segment.backing_path;
      if (!guest.filesystem().IsFile(jailed) &&
          !guest.filesystem().IsFile(segment.backing_path)) {
        return NotFound(StrFormat(
            "file-backed mapping %s not present on guest (pairing missing?)",
            segment.backing_path.c_str()));
      }
    }
    process->address_space().Map(std::move(segment));
  }

  // ----- file descriptors -----
  ArchiveReader fds({});
  FLUX_RETURN_IF_ERROR(in.GetSection(fds));
  uint64_t fd_count = 0;
  FLUX_RETURN_IF_ERROR(fds.GetU64(fd_count));
  for (uint64_t i = 0; i < fd_count; ++i) {
    int64_t fd = 0;
    uint8_t kind = 0;
    FLUX_RETURN_IF_ERROR(fds.GetI64(fd));
    FLUX_RETURN_IF_ERROR(fds.GetU8(kind));
    const Fd fd_num = static_cast<Fd>(fd);
    switch (static_cast<FdKind>(kind)) {
      case FdKind::kRegularFile: {
        std::string path;
        uint64_t offset = 0;
        bool writable = false;
        FLUX_RETURN_IF_ERROR(fds.GetString(path));
        FLUX_RETURN_IF_ERROR(fds.GetU64(offset));
        FLUX_RETURN_IF_ERROR(fds.GetBool(writable));
        FLUX_RETURN_IF_ERROR(process->InstallFdAt(
            fd_num, std::make_shared<RegularFileFd>(path, offset, writable)));
        break;
      }
      case FdKind::kUnixSocket: {
        std::string peer_tag;
        uint64_t connection_id = 0;
        FLUX_RETURN_IF_ERROR(fds.GetString(peer_tag));
        FLUX_RETURN_IF_ERROR(fds.GetU64(connection_id));
        // The descriptor number is reserved; Adaptive Replay reconnects the
        // channel and dup2()s the fresh socket onto it (§3.2).
        FLUX_RETURN_IF_ERROR(process->ReserveFd(fd_num));
        if (is_main) {
          restored.reserved_sockets.push_back(CriaRestoredApp::ReservedSocket{
              fd_num, peer_tag, connection_id});
        }
        break;
      }
      case FdKind::kAshmem: {
        std::string name;
        uint64_t size = 0;
        FLUX_RETURN_IF_ERROR(fds.GetString(name));
        FLUX_RETURN_IF_ERROR(fds.GetU64(size));
        guest.kernel().ashmem().CreateRegion(process->pid(), name, size);
        FLUX_RETURN_IF_ERROR(process->InstallFdAt(
            fd_num, std::make_shared<AshmemFd>(name, size)));
        break;
      }
      case FdKind::kLogger: {
        std::string log_name;
        FLUX_RETURN_IF_ERROR(fds.GetString(log_name));
        FLUX_RETURN_IF_ERROR(process->InstallFdAt(
            fd_num, std::make_shared<LoggerFd>(log_name)));
        break;
      }
      case FdKind::kBinder:
        FLUX_RETURN_IF_ERROR(
            process->InstallFdAt(fd_num, std::make_shared<BinderFd>()));
        break;
      default:
        return Corrupt("unexpected fd kind in CRIA image");
    }
  }

  // ----- handle table -----
  ArchiveReader handles({});
  FLUX_RETURN_IF_ERROR(in.GetSection(handles));
  uint64_t handle_count = 0;
  FLUX_RETURN_IF_ERROR(handles.GetU64(handle_count));
  for (uint64_t i = 0; i < handle_count; ++i) {
    CheckpointedHandle handle;
    uint8_t cls = 0;
    int64_t strong = 0;
    int64_t weak = 0;
    FLUX_RETURN_IF_ERROR(handles.GetU64(handle.handle));
    FLUX_RETURN_IF_ERROR(handles.GetU64(handle.node_id));
    FLUX_RETURN_IF_ERROR(handles.GetI64(strong));
    FLUX_RETURN_IF_ERROR(handles.GetI64(weak));
    FLUX_RETURN_IF_ERROR(handles.GetU8(cls));
    FLUX_RETURN_IF_ERROR(handles.GetString(handle.service_name));
    FLUX_RETURN_IF_ERROR(handles.GetString(handle.interface));
    handle.strong_refs = static_cast<int>(strong);
    handle.weak_refs = static_cast<int>(weak);
    handle.cls = static_cast<HandleClass>(cls);

    if (is_main) {
      restored.handle_to_old_node[handle.handle] = handle.node_id;
    }
    switch (handle.cls) {
      case HandleClass::kService: {
        // Ask the guest ServiceManager for the equivalent service and inject
        // the reference under the previously issued handle id (§3.3).
        auto node =
            guest.service_manager().GetServiceNode(handle.service_name);
        if (!node.ok()) {
          return Unavailable(
              StrFormat("guest has no service '%s' required by the app",
                        handle.service_name.c_str()));
        }
        FLUX_RETURN_IF_ERROR(guest.binder().InstallHandleAt(
            process->pid(), handle.handle, node.value(), handle.strong_refs,
            handle.weak_refs));
        break;
      }
      case HandleClass::kAppInternal:
        // Both ends are restored; node ids become known once the app's own
        // objects are re-registered.
        internal_handles.push_back(PendingInternalHandle{
            process->pid(), handle.handle, handle.node_id, handle.strong_refs,
            handle.weak_refs});
        break;
      case HandleClass::kAnonymousSystem:
        if (is_main) {
          restored.deferred_handles.push_back(CriaRestoredApp::DeferredHandle{
              handle.handle, handle.node_id, handle.interface});
        } else {
          FLUX_LOG(kWarning, "cria")
              << "helper process holds an anonymous system handle; replay "
                 "proxies only rebuild the main process's";
        }
        break;
      case HandleClass::kExternal:
        return Unsupported("CRIA image contains an external Binder handle");
    }
  }

  // ----- pending async transactions -----
  ArchiveReader pending({});
  FLUX_RETURN_IF_ERROR(in.GetSection(pending));
  uint64_t pending_count = 0;
  FLUX_RETURN_IF_ERROR(pending.GetU64(pending_count));
  for (uint64_t i = 0; i < pending_count; ++i) {
    PendingTxn txn;
    txn.new_pid = process->pid();
    FLUX_RETURN_IF_ERROR(pending.GetU64(txn.old_node));
    FLUX_RETURN_IF_ERROR(pending.GetString(txn.method));
    ArchiveReader args_section({});
    FLUX_RETURN_IF_ERROR(pending.GetSection(args_section));
    FLUX_ASSIGN_OR_RETURN(txn.args, Parcel::Deserialize(args_section));
    pending_txns.push_back(std::move(txn));
  }

  // ----- owned Binder nodes -----
  ArchiveReader owned({});
  FLUX_RETURN_IF_ERROR(in.GetSection(owned));
  uint64_t owned_count = 0;
  FLUX_RETURN_IF_ERROR(owned.GetU64(owned_count));
  for (uint64_t i = 0; i < owned_count; ++i) {
    uint64_t node_id = 0;
    std::string interface;
    FLUX_RETURN_IF_ERROR(owned.GetU64(node_id));
    FLUX_RETURN_IF_ERROR(owned.GetString(interface));
    owned_nodes_out.emplace_back(node_id, std::move(interface));
  }
  return process;
}

}  // namespace

std::string_view HandleClassName(HandleClass cls) {
  switch (cls) {
    case HandleClass::kService:
      return "service";
    case HandleClass::kAppInternal:
      return "app_internal";
    case HandleClass::kAnonymousSystem:
      return "anonymous_system";
    case HandleClass::kExternal:
      return "external";
  }
  return "unknown";
}

Status Cria::CheckMigratable(Device& device, Pid pid,
                             const CriaCheckOptions& options) {
  SimProcess* process = device.kernel().FindProcess(pid);
  if (process == nullptr) {
    return NotFound(StrFormat("no process %d", pid));
  }
  // Multi-process apps: refused unless the process-tree extension is on.
  if (!options.allow_multiprocess &&
      device.kernel().ProcessesOfUid(process->uid()).size() > 1) {
    return Unsupported("multi-process apps are not supported");
  }
  // Only app-specific SD-card directories migrate; an app holding open
  // files in the *common* SD-card area would lose them on the guest, so
  // migration is refused (§3.4).
  const std::string app_sd_prefix =
      "/sdcard/Android/data/" + process->name();
  for (const Pid app_pid : device.kernel().ProcessesOfUid(process->uid())) {
    const SimProcess* p = device.kernel().FindProcess(app_pid);
    for (const auto& [fd, object] : p->fd_table()) {
      (void)fd;
      if (object->kind() != FdKind::kRegularFile) {
        continue;
      }
      const auto* file = static_cast<const RegularFileFd*>(object.get());
      if (StrStartsWith(file->path(), "/sdcard/") &&
          !StrStartsWith(file->path(), app_sd_prefix)) {
        return Unsupported(
            StrFormat("app has common SD card data open (%s); only "
                      "app-specific SD directories migrate",
                      file->path().c_str()));
      }
    }
  }

  // External (non-system) Binder connections: refuse (§3.3). An app caught
  // mid-ContentProvider interaction (holding a provider connection) is also
  // refused — provider connections are short-lived and not record/replayed
  // (§3.4).
  for (const Pid app_pid : device.kernel().ProcessesOfUid(process->uid())) {
    for (const auto& handle :
         ClassifyAllHandles(device, app_pid, process->uid())) {
      if (handle.cls == HandleClass::kExternal) {
        return Unsupported(
            StrFormat("app holds an external non-system Binder connection "
                      "(handle %llu to %s)",
                      static_cast<unsigned long long>(handle.handle),
                      handle.interface.c_str()));
      }
      if (handle.interface == kContentProviderInterface) {
        return Unsupported(
            "app is interacting with a ContentProvider; retry once the "
            "interaction completes");
      }
    }
  }
  return OkStatus();
}

Result<CriaCheckpointResult> Cria::Checkpoint(Device& device, Pid pid,
                                              const ActivityThread& thread,
                                              Tracer* trace) {
  return CheckpointTree(device, {pid}, thread, trace);
}

Result<CriaCheckpointResult> Cria::CheckpointTree(
    Device& device, const std::vector<Pid>& pids,
    const ActivityThread& thread, Tracer* trace) {
  if (pids.empty()) {
    return InvalidArgument("no processes to checkpoint");
  }
  FLUX_TRACE_SPAN(checkpoint_span, trace, trace_names::kSpanCriaCheckpoint);
  SimProcess* main = device.kernel().FindProcess(pids.front());
  if (main == nullptr) {
    return NotFound(StrFormat("no process %d", pids.front()));
  }
  CriaCheckOptions check;
  check.allow_multiprocess = pids.size() > 1;
  FLUX_RETURN_IF_ERROR(CheckMigratable(device, pids.front(), check));

  CriaStats stats;
  ArchiveWriter image;
  image.PutU32(kImageMagic);
  image.PutU32(kImageVersion);

  // ----- identity -----
  ArchiveWriter header;
  header.PutString(thread.package());
  header.PutI64(main->uid());
  header.PutU64(device.clock().now());
  header.PutU64(pids.size());
  image.PutSection(header);

  // ----- per-process state, main first -----
  for (const Pid pid : pids) {
    ArchiveWriter process_section;
    FLUX_RETURN_IF_ERROR(SerializeProcess(device, pid, process_section, stats));
    image.PutSection(process_section);
  }

  // ----- Dalvik-level app state (the ActivityThread object graph) -----
  ArchiveWriter app_state;
  thread.SaveState(app_state);
  image.PutSection(app_state);

  CriaCheckpointResult result;
  result.image = image.TakeData();
  stats.image_bytes = result.image.size();
  result.stats = stats;
  FLUX_TRACE_COUNT(trace, trace_names::kCriaCheckpoints, 1);
  FLUX_TRACE_COUNT(trace, trace_names::kCriaImageBytes, stats.image_bytes);
  FLUX_EVENT(&device.flight_recorder(), flight_events::kSubCria,
             flight_events::kCriaCheckpoint, EventSeverity::kInfo,
             stats.image_bytes, pids.size());
  return result;
}

uint64_t Cria::BeginDirtyEpoch(Device& device, const std::vector<Pid>& pids) {
  uint64_t epoch = 0;
  for (const Pid pid : pids) {
    if (SimProcess* process = device.kernel().FindProcess(pid)) {
      epoch = std::max(epoch, process->address_space().BeginEpoch());
    }
  }
  for (const Pid pid : pids) {
    if (SimProcess* process = device.kernel().FindProcess(pid)) {
      process->address_space().AlignGeneration(epoch);
    }
  }
  return epoch;
}

uint64_t Cria::DirtyBytesSince(Device& device, const std::vector<Pid>& pids,
                               uint64_t epoch) {
  uint64_t total = 0;
  for (const Pid pid : pids) {
    if (const SimProcess* process = device.kernel().FindProcess(pid)) {
      total += process->address_space().DirtyBytesSince(epoch);
    }
  }
  return total;
}

Result<CriaIncrementalResult> Cria::CheckpointIncremental(
    Device& device, const std::vector<Pid>& pids, uint64_t epoch,
    Tracer* trace) {
  if (pids.empty()) {
    return InvalidArgument("no processes to checkpoint");
  }
  FLUX_TRACE_SPAN(span, trace, trace_names::kSpanCriaPreDump);
  CriaStats stats;
  ArchiveWriter delta;
  delta.PutU32(kDeltaMagic);
  delta.PutU32(kDeltaVersion);

  ArchiveWriter header;
  header.PutU64(device.clock().now());
  header.PutU64(epoch);
  header.PutU64(pids.size());
  delta.PutSection(header);

  for (const Pid pid : pids) {
    SimProcess* process = device.kernel().FindProcess(pid);
    if (process == nullptr) {
      return NotFound(StrFormat("no process %d", pid));
    }
    ++stats.processes;
    ArchiveWriter section;
    section.PutString(process->name());
    std::vector<const MemorySegment*> dirty;
    for (const MemorySegment& segment :
         process->address_space().segments()) {
      if (segment.checkpointed() && segment.dirty_gen >= epoch) {
        dirty.push_back(&segment);
      }
    }
    section.PutU64(dirty.size());
    for (const MemorySegment* segment : dirty) {
      section.PutU64(segment->start);
      section.PutString(segment->name);
      section.PutBytes(
          ByteSpan(segment->content.data(), segment->content.size()));
      stats.memory_bytes += segment->content.size();
      ++stats.segments;
    }
    delta.PutSection(section);
  }

  CriaIncrementalResult result;
  result.delta = delta.TakeData();
  result.epoch = epoch;
  stats.image_bytes = result.delta.size();
  result.stats = stats;
  FLUX_TRACE_COUNT(trace, trace_names::kCriaIncrementalCheckpoints, 1);
  FLUX_TRACE_COUNT(trace, trace_names::kCriaIncrementalBytes,
                   stats.memory_bytes);
  return result;
}

Result<Bytes> Cria::ApplyIncremental(ByteSpan base_image, ByteSpan delta) {
  // Parse the delta into per-process content substitutions keyed by the
  // segment's start address.
  ArchiveReader delta_reader(delta);
  uint32_t magic = 0;
  uint32_t version = 0;
  FLUX_RETURN_IF_ERROR(delta_reader.GetU32(magic));
  FLUX_RETURN_IF_ERROR(delta_reader.GetU32(version));
  if (magic != kDeltaMagic || version != kDeltaVersion) {
    return Corrupt("not a CRID delta (bad magic/version)");
  }
  ArchiveReader delta_header({});
  FLUX_RETURN_IF_ERROR(delta_reader.GetSection(delta_header));
  uint64_t new_time = 0;
  uint64_t epoch = 0;
  uint64_t delta_process_count = 0;
  FLUX_RETURN_IF_ERROR(delta_header.GetU64(new_time));
  FLUX_RETURN_IF_ERROR(delta_header.GetU64(epoch));
  FLUX_RETURN_IF_ERROR(delta_header.GetU64(delta_process_count));
  (void)epoch;

  struct DeltaProcess {
    std::string name;
    std::map<uint64_t, ByteSpan> segments;  // start -> new content
  };
  std::vector<DeltaProcess> patches;
  for (uint64_t p = 0; p < delta_process_count; ++p) {
    ArchiveReader section({});
    FLUX_RETURN_IF_ERROR(delta_reader.GetSection(section));
    DeltaProcess patch;
    FLUX_RETURN_IF_ERROR(section.GetString(patch.name));
    uint64_t segment_count = 0;
    FLUX_RETURN_IF_ERROR(section.GetU64(segment_count));
    for (uint64_t i = 0; i < segment_count; ++i) {
      uint64_t start = 0;
      std::string name;
      ByteSpan content;
      FLUX_RETURN_IF_ERROR(section.GetU64(start));
      FLUX_RETURN_IF_ERROR(section.GetString(name));
      FLUX_RETURN_IF_ERROR(section.GetBytesView(content));
      patch.segments[start] = content;
    }
    patches.push_back(std::move(patch));
  }

  // Walk the base image structurally, re-emitting every field; only the
  // header's checkpoint time and the patched segments' content differ, so
  // the output is byte-identical to a full checkpoint at the delta's cut
  // (as long as nothing but memory changed between the cuts).
  ArchiveReader base(base_image);
  FLUX_RETURN_IF_ERROR(base.GetU32(magic));
  FLUX_RETURN_IF_ERROR(base.GetU32(version));
  if (magic != kImageMagic || version != kImageVersion) {
    return Corrupt("not a CRIA image (bad magic/version)");
  }
  ArchiveWriter out;
  out.PutU32(kImageMagic);
  out.PutU32(kImageVersion);

  ArchiveReader base_header({});
  FLUX_RETURN_IF_ERROR(base.GetSection(base_header));
  std::string package;
  int64_t uid = -1;
  uint64_t base_time = 0;
  uint64_t process_count = 0;
  FLUX_RETURN_IF_ERROR(base_header.GetString(package));
  FLUX_RETURN_IF_ERROR(base_header.GetI64(uid));
  FLUX_RETURN_IF_ERROR(base_header.GetU64(base_time));
  FLUX_RETURN_IF_ERROR(base_header.GetU64(process_count));
  if (process_count != delta_process_count) {
    return Unsupported(
        "process tree changed since the base checkpoint; take a full "
        "checkpoint");
  }
  ArchiveWriter header;
  header.PutString(package);
  header.PutI64(uid);
  header.PutU64(new_time);
  header.PutU64(process_count);
  out.PutSection(header);

  size_t applied = 0;
  for (uint64_t p = 0; p < process_count; ++p) {
    ArchiveReader section({});
    FLUX_RETURN_IF_ERROR(base.GetSection(section));
    ArchiveWriter patched;

    std::string process_name;
    int64_t virtual_pid = -1;
    FLUX_RETURN_IF_ERROR(section.GetString(process_name));
    FLUX_RETURN_IF_ERROR(section.GetI64(virtual_pid));
    if (process_name != patches[p].name) {
      return Unsupported(
          "process order changed since the base checkpoint; take a full "
          "checkpoint");
    }
    patched.PutString(process_name);
    patched.PutI64(virtual_pid);

    ByteSpan threads;
    FLUX_RETURN_IF_ERROR(section.GetSectionRaw(threads));
    patched.PutSectionRaw(threads);

    // ----- memory section: substitute patched segment contents -----
    ArchiveReader memory({});
    FLUX_RETURN_IF_ERROR(section.GetSection(memory));
    ArchiveWriter patched_memory;
    uint64_t segment_count = 0;
    FLUX_RETURN_IF_ERROR(memory.GetU64(segment_count));
    patched_memory.PutU64(segment_count);
    for (uint64_t i = 0; i < segment_count; ++i) {
      std::string name;
      uint8_t kind = 0;
      uint64_t start = 0;
      ByteSpan content;
      FLUX_RETURN_IF_ERROR(memory.GetString(name));
      FLUX_RETURN_IF_ERROR(memory.GetU8(kind));
      FLUX_RETURN_IF_ERROR(memory.GetU64(start));
      FLUX_RETURN_IF_ERROR(memory.GetBytesView(content));
      patched_memory.PutString(name);
      patched_memory.PutU8(kind);
      patched_memory.PutU64(start);
      auto patch = patches[p].segments.find(start);
      if (patch != patches[p].segments.end()) {
        if (patch->second.size() != content.size()) {
          return Unsupported(
              "dirty segment changed size since the base checkpoint; take "
              "a full checkpoint");
        }
        patched_memory.PutBytes(patch->second);
        ++applied;
      } else {
        patched_memory.PutBytes(content);
      }
      if (!KindCheckpointed(static_cast<SegmentKind>(kind))) {
        uint64_t mapped_size = 0;
        std::string backing_path;
        FLUX_RETURN_IF_ERROR(memory.GetU64(mapped_size));
        FLUX_RETURN_IF_ERROR(memory.GetString(backing_path));
        patched_memory.PutU64(mapped_size);
        patched_memory.PutString(backing_path);
      }
    }
    patched.PutSection(patched_memory);

    // fds, handles, pending transactions, owned nodes: pass through.
    for (int s = 0; s < 4; ++s) {
      ByteSpan raw;
      FLUX_RETURN_IF_ERROR(section.GetSectionRaw(raw));
      patched.PutSectionRaw(raw);
    }
    if (!section.AtEnd()) {
      return Corrupt("trailing bytes in CRIA process section");
    }
    out.PutSection(patched);
  }

  ByteSpan app_state;
  FLUX_RETURN_IF_ERROR(base.GetSectionRaw(app_state));
  out.PutSectionRaw(app_state);
  if (!base.AtEnd()) {
    return Corrupt("trailing bytes in CRIA image");
  }

  uint64_t patch_total = 0;
  for (const auto& patch : patches) {
    patch_total += patch.segments.size();
  }
  if (applied != patch_total) {
    return Unsupported(
        "delta contains a segment mapped after the base checkpoint; take a "
        "full checkpoint");
  }
  return out.TakeData();
}

Result<CriaRestoredApp> Cria::Restore(Device& guest, ByteSpan image,
                                      const CriaRestoreOptions& options) {
  FLUX_TRACE_SPAN(restore_span, options.trace, trace_names::kSpanCriaRestore);
  FLUX_TRACE_COUNT(options.trace, trace_names::kCriaRestores, 1);
  ArchiveReader reader(image);
  uint32_t magic = 0;
  uint32_t version = 0;
  FLUX_RETURN_IF_ERROR(reader.GetU32(magic));
  FLUX_RETURN_IF_ERROR(reader.GetU32(version));
  if (magic != kImageMagic || version != kImageVersion) {
    return Corrupt("not a CRIA image (bad magic/version)");
  }

  // ----- identity -----
  ArchiveReader header({});
  FLUX_RETURN_IF_ERROR(reader.GetSection(header));
  std::string package;
  int64_t uid = -1;
  uint64_t checkpoint_time = 0;
  uint64_t process_count = 0;
  FLUX_RETURN_IF_ERROR(header.GetString(package));
  FLUX_RETURN_IF_ERROR(header.GetI64(uid));
  FLUX_RETURN_IF_ERROR(header.GetU64(checkpoint_time));
  FLUX_RETURN_IF_ERROR(header.GetU64(process_count));
  if (process_count == 0 || process_count > 64) {
    return Corrupt("implausible process count in CRIA image");
  }

  // The wrapper app's uid on the guest (pseudo-installed at pairing).
  Uid guest_uid = static_cast<Uid>(uid);
  if (const PackageInfo* wrapper = guest.package_manager().Find(package)) {
    guest_uid = wrapper->uid;
  }

  // Private PID namespace so every process keeps its pid numbering (§3.3).
  const int ns = guest.kernel().CreatePidNamespace();

  CriaRestoredApp restored;
  restored.uid = guest_uid;
  restored.package = package;
  restored.checkpoint_time = checkpoint_time;

  std::vector<std::pair<uint64_t, std::string>> owned_nodes;
  std::vector<PendingInternalHandle> internal_handles;
  std::vector<PendingTxn> pending_txns;
  std::map<uint64_t, Pid> owned_node_to_new_pid;

  for (uint64_t i = 0; i < process_count; ++i) {
    ArchiveReader process_section({});
    FLUX_RETURN_IF_ERROR(reader.GetSection(process_section));
    const size_t owned_before = owned_nodes.size();
    FLUX_ASSIGN_OR_RETURN(
        SimProcess * process,
        RestoreProcess(guest, process_section, ns, guest_uid, options,
                       /*is_main=*/i == 0, restored, owned_nodes,
                       internal_handles, pending_txns));
    restored.all_pids.push_back(process->pid());
    for (size_t n = owned_before; n < owned_nodes.size(); ++n) {
      owned_node_to_new_pid[owned_nodes[n].first] = process->pid();
    }
    if (i == 0) {
      restored.pid = process->pid();
      restored.virtual_pid = process->virtual_pid();
    }
  }

  // ----- Dalvik-level app state -----
  ArchiveReader app_state({});
  FLUX_RETURN_IF_ERROR(reader.GetSection(app_state));
  uint64_t old_thread_node = 0;
  FLUX_ASSIGN_OR_RETURN(
      restored.thread,
      ActivityThread::RestoreState(guest.context(), restored.pid, guest_uid,
                                   package, app_state, restored.node_mapping,
                                   old_thread_node));

  // Recreate the remaining app-owned nodes (listeners, tokens) as stub
  // objects in their owning processes; the real objects come back inside the
  // restored memory images, these give them live driver-side identities.
  for (const auto& [node_id, interface] : owned_nodes) {
    if (node_id == old_thread_node ||
        restored.node_mapping.count(node_id) > 0) {
      continue;
    }
    auto stub = std::make_shared<RestoredStub>(interface);
    const Pid owner = owned_node_to_new_pid.count(node_id) > 0
                          ? owned_node_to_new_pid[node_id]
                          : restored.pid;
    restored.node_mapping[node_id] =
        guest.binder().RegisterNode(owner, stub);
    restored.restored_stubs.push_back(std::move(stub));
  }

  // Attach the restored thread early: it registers the new
  // IApplicationThread node, completing the node mapping before handles and
  // buffered transactions are resolved against it.
  FLUX_RETURN_IF_ERROR(restored.thread->Attach());
  if (old_thread_node != 0) {
    restored.node_mapping[old_thread_node] = restored.thread->thread_node();
  }

  // Internal handles now resolve through the node mapping.
  for (const PendingInternalHandle& handle : internal_handles) {
    auto it = restored.node_mapping.find(handle.old_node);
    if (it == restored.node_mapping.end()) {
      FLUX_LOG(kWarning, "cria")
          << "internal handle " << handle.handle
          << " references an unrestored app node; dropping";
      continue;
    }
    FLUX_RETURN_IF_ERROR(guest.binder().InstallHandleAt(
        handle.new_pid, handle.handle, it->second, handle.strong,
        handle.weak));
  }

  // Re-queue checkpointed async transactions targeting the app's nodes.
  for (PendingTxn& txn : pending_txns) {
    auto it = restored.node_mapping.find(txn.old_node);
    if (it == restored.node_mapping.end()) {
      FLUX_LOG(kWarning, "cria")
          << "dropping pending transaction to unmapped node " << txn.old_node;
      continue;
    }
    PendingAsyncTransaction queued;
    queued.sender_pid = guest.system_server().pid();
    queued.node_id = it->second;
    queued.method = txn.method;
    queued.args = std::move(txn.args);
    guest.binder().InjectPendingAsync(txn.new_pid, std::move(queued));
  }

  for (const LocalActivity& activity : restored.thread->activities()) {
    FLUX_RETURN_IF_ERROR(guest.activity_manager().AdoptActivity(
        activity.token, activity.name, package, restored.pid));
    restored.activity_tokens.push_back(activity.token);
  }

  if (!reader.AtEnd()) {
    return Corrupt("trailing bytes in CRIA image");
  }
  FLUX_EVENT(&guest.flight_recorder(), flight_events::kSubCria,
             flight_events::kCriaRestore, EventSeverity::kInfo, image.size(),
             static_cast<uint64_t>(restored.pid));
  return restored;
}

}  // namespace flux
