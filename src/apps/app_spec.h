// Synthetic models of the paper's evaluation apps (Table 3, Figure 15).
//
// Each spec captures what determines an app's migration behaviour:
//  - APK size (pairing/verification traffic; Figure 15's reference series);
//  - live heap (dominates the checkpoint image and hence transfer time);
//  - the services its workload touches (drives the call log Selective
//    Record keeps);
//  - GL usage (3D games shed much more GPU state in preparation);
//  - the two disqualifying traits: multi-process (Facebook) and
//    setPreserveEGLContextOnPause (Subway Surfers).
// Sizes are modeled on the Play-store listings of the period; transfer
// sizes emerge from the pipeline (heap -> checkpoint -> compress), not from
// these numbers directly.
#ifndef FLUX_SRC_APPS_APP_SPEC_H_
#define FLUX_SRC_APPS_APP_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace flux {

struct WorkloadProfile {
  // Service-interaction counts performed before migration.
  int notifications_posted = 0;
  int notifications_cancelled = 0;  // must be <= posted
  int alarms_set = 0;
  int alarms_removed = 0;
  int expired_alarms = 0;  // set in the past -> replay proxy must skip
  int audio_volume_changes = 0;
  int clipboard_sets = 0;
  int location_requests = 0;
  int wifi_queries = 0;
  int vibrations = 0;
  bool uses_sensors = false;
  bool registers_connectivity_receiver = true;
  // Transient ContentProvider use (acquire -> query -> close -> release):
  // completes before migration, so the app stays migratable (§3.4).
  bool queries_contacts = false;
  // UI shape.
  int view_count = 30;
  uint64_t bytes_per_view = 48 * 1024;
  int frames_drawn = 12;
  bool uses_3d = false;          // extra GL textures/buffers (games)
  uint64_t texture_bytes_3d = 0; // uploaded when uses_3d
  // Write load while prepared-but-running (drives pre-copy convergence,
  // DESIGN.md §10). The app is backgrounded during the warm-up rounds, so
  // these are background rates: GC, timers, message queues — not the
  // foreground render loop. `dirty_hot_fraction` is the slice of the heap
  // that absorbs 9 in 10 writes (the resident working set a freeze always
  // finds dirty; it bounds the stop-and-copy floor).
  uint64_t dirty_bytes_per_s = 96 * 1024;
  double dirty_hot_fraction = 0.02;
};

struct AppSpec {
  std::string package;
  std::string display_name;
  std::string workload_desc;  // Table 3's description
  uint64_t apk_bytes = 0;
  uint64_t heap_bytes = 0;        // dirty anonymous memory while running
  double heap_compressibility = 0.62;
  uint64_t data_dir_bytes = 0;    // /data/data/<pkg> files
  uint64_t sdcard_dir_bytes = 0;  // app-specific SD card directory
  bool multi_process = false;
  bool preserves_egl_context = false;
  WorkloadProfile workload;
};

// The eighteen Table 3 apps, in the paper's order.
const std::vector<AppSpec>& TopApps();

// Lookup by display name; nullptr if absent.
const AppSpec* FindApp(const std::string& display_name);

// The sixteen apps that migrate successfully (§4).
std::vector<const AppSpec*> MigratableApps();

}  // namespace flux

#endif  // FLUX_SRC_APPS_APP_SPEC_H_
