// A running app on a device.
//
// AppInstance installs an AppSpec's APK and data, launches its process with
// a realistic memory image, attaches an ActivityThread and then *drives* the
// Table 3 workload through real substrate calls: Binder transactions into
// the decorated services, GL uploads, file writes. Everything Flux later
// records, sheds, checkpoints and replays is produced by this driver — there
// is no shortcut state.
#ifndef FLUX_SRC_APPS_APP_INSTANCE_H_
#define FLUX_SRC_APPS_APP_INSTANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/apps/app_spec.h"
#include "src/device/device.h"
#include "src/framework/activity_thread.h"

namespace flux {

class AppInstance {
 public:
  AppInstance(Device& device, AppSpec spec);

  // Installs APK + data files and registers with the PackageManager.
  // Idempotent per device.
  Status Install();

  // Launches the process (and the helper process for multi-process apps),
  // attaches the ActivityThread, starts the main activity, inflates the UI
  // and draws the first frames.
  Status Launch();

  // Performs the spec's workload (notifications, alarms, sensors, GL...).
  // `seed` varies content deterministically.
  Status RunWorkload(uint64_t seed);

  Status DrawFrames(int count);

  bool launched() const { return thread_ != nullptr; }
  Pid pid() const { return pid_; }
  const std::vector<Pid>& all_pids() const { return pids_; }
  Uid uid() const { return uid_; }
  const AppSpec& spec() const { return spec_; }
  Device& device() { return device_; }
  ActivityThread& thread() { return *thread_; }
  std::shared_ptr<ActivityThread> shared_thread() { return thread_; }
  const std::string& main_token() const { return main_token_; }

  // Workload artifacts used by tests to verify post-migration state.
  uint64_t sensor_connection_handle() const {
    return sensor_connection_handle_;
  }
  Fd sensor_channel_fd() const { return sensor_channel_fd_; }
  const std::vector<std::string>& alarm_tokens() const {
    return alarm_tokens_;
  }

  // Standard filesystem locations.
  std::string ApkPath() const;
  std::string DataDir() const;
  std::string SdcardDir() const;

 private:
  Status WriteDataFiles();
  Status MapHeap();

  Device& device_;
  AppSpec spec_;
  bool installed_ = false;
  Pid pid_ = kInvalidPid;
  std::vector<Pid> pids_;
  Uid uid_ = -1;
  std::shared_ptr<ActivityThread> thread_;
  std::string main_token_;

  uint64_t sensor_connection_handle_ = 0;
  Fd sensor_channel_fd_ = kInvalidFd;
  std::vector<std::string> alarm_tokens_;
  std::vector<std::shared_ptr<BinderObject>> stub_objects_;
};

}  // namespace flux

#endif  // FLUX_SRC_APPS_APP_INSTANCE_H_
