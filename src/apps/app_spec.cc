#include "src/apps/app_spec.h"

#include "src/base/bytes.h"

namespace flux {

namespace {

std::vector<AppSpec> BuildTopApps() {
  std::vector<AppSpec> apps;

  {
    AppSpec app;
    app.package = "com.sirma.mobile.bible.android";
    app.display_name = "Bible";
    app.workload_desc = "View page of the Bible";
    app.apk_bytes = MiB(18);
    app.heap_bytes = MiB(12);
    app.data_dir_bytes = MiB(6);
    app.workload.view_count = 40;
    app.workload.notifications_posted = 2;
    app.workload.notifications_cancelled = 1;
    app.workload.alarms_set = 1;  // daily verse
    app.workload.dirty_bytes_per_s = 48 * 1024;   // static page view
    app.workload.dirty_hot_fraction = 0.02;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.king.bubblewitchsaga";
    app.display_name = "Bubble Witch Saga";
    app.workload_desc = "Play witch-themed puzzle game";
    app.apk_bytes = MiB(46);
    app.heap_bytes = MiB(24);
    app.heap_compressibility = 0.57;
    app.data_dir_bytes = MiB(10);
    app.workload.uses_3d = true;
    app.workload.texture_bytes_3d = MiB(20);
    app.workload.dirty_bytes_per_s = 224 * 1024;  // backgrounded game loop
    app.workload.dirty_hot_fraction = 0.01;
    app.workload.frames_drawn = 60;
    app.workload.audio_volume_changes = 2;
    app.workload.alarms_set = 2;  // lives refill
    app.workload.expired_alarms = 1;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.king.candycrushsaga";
    app.display_name = "Candy Crush Saga";
    app.workload_desc = "Play candy-themed puzzle game";
    app.apk_bytes = MiB(43);
    app.heap_bytes = MiB(27);
    app.heap_compressibility = 0.57;
    app.data_dir_bytes = MiB(12);
    app.workload.uses_3d = true;
    app.workload.texture_bytes_3d = MiB(24);
    app.workload.dirty_bytes_per_s = 256 * 1024;  // backgrounded game loop
    app.workload.dirty_hot_fraction = 0.01;
    app.workload.frames_drawn = 80;
    app.workload.audio_volume_changes = 3;
    app.workload.alarms_set = 3;
    app.workload.alarms_removed = 1;
    app.workload.expired_alarms = 1;
    app.workload.notifications_posted = 1;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.ebay.mobile";
    app.display_name = "eBay";
    app.workload_desc = "View online auction";
    app.apk_bytes = MiB(10);
    app.heap_bytes = MiB(13);
    app.data_dir_bytes = MiB(4);
    app.workload.view_count = 55;
    app.workload.notifications_posted = 3;
    app.workload.notifications_cancelled = 2;
    app.workload.alarms_set = 2;  // auction-end reminders
    app.workload.location_requests = 1;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.dotgears.flappybird";
    app.display_name = "Flappy Bird";
    app.workload_desc = "Play obstacle game";
    app.apk_bytes = MiB(1);
    app.heap_bytes = MiB(5);
    app.heap_compressibility = 0.66;
    app.data_dir_bytes = 256 * 1024;
    app.workload.view_count = 8;
    app.workload.uses_3d = true;
    app.workload.texture_bytes_3d = MiB(4);
    app.workload.dirty_bytes_per_s = 160 * 1024;  // paused render loop
    app.workload.dirty_hot_fraction = 0.05;
    app.workload.frames_drawn = 120;
    app.workload.uses_sensors = false;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.surpax.ledflashlight";
    app.display_name = "Surpax Flashlight";
    app.workload_desc = "Use LED flashlight";
    app.apk_bytes = MiB(2);
    app.heap_bytes = MiB(3);
    app.heap_compressibility = 0.72;
    app.data_dir_bytes = 64 * 1024;
    app.workload.view_count = 6;
    app.workload.frames_drawn = 4;
    app.workload.vibrations = 1;
    app.workload.dirty_bytes_per_s = 8 * 1024;    // nearly idle
    app.workload.dirty_hot_fraction = 0.02;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.groupon";
    app.display_name = "GroupOn";
    app.workload_desc = "View discount offer";
    app.apk_bytes = MiB(8);
    app.heap_bytes = MiB(11);
    app.data_dir_bytes = MiB(3);
    app.workload.view_count = 45;
    app.workload.location_requests = 2;
    app.workload.notifications_posted = 2;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.instagram.android";
    app.display_name = "Instagram";
    app.workload_desc = "Browse a friend's photos";
    app.apk_bytes = MiB(13);
    app.heap_bytes = MiB(16);
    app.heap_compressibility = 0.52;  // decoded JPEGs compress poorly
    app.data_dir_bytes = MiB(20);
    app.sdcard_dir_bytes = MiB(8);
    app.workload.view_count = 70;
    app.workload.bytes_per_view = 96 * 1024;
    app.workload.frames_drawn = 30;
    app.workload.notifications_posted = 4;
    app.workload.notifications_cancelled = 2;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.netflix.mediaclient";
    app.display_name = "Netflix";
    app.workload_desc = "Browse available movies";
    app.apk_bytes = MiB(11);
    app.heap_bytes = MiB(18);
    app.heap_compressibility = 0.52;
    app.data_dir_bytes = MiB(9);
    app.workload.view_count = 60;
    app.workload.bytes_per_view = 128 * 1024;
    app.workload.frames_drawn = 25;
    app.workload.audio_volume_changes = 1;
    app.workload.wifi_queries = 3;
    app.workload.dirty_bytes_per_s = 128 * 1024;  // media buffer churn
    app.workload.dirty_hot_fraction = 0.015;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.pinterest";
    app.display_name = "Pinterest";
    app.workload_desc = "Explore \"pinned\" items of interest";
    app.apk_bytes = MiB(9);
    app.heap_bytes = MiB(17);
    app.heap_compressibility = 0.52;
    app.data_dir_bytes = MiB(12);
    app.workload.view_count = 80;
    app.workload.bytes_per_view = 96 * 1024;
    app.workload.frames_drawn = 35;
    app.workload.notifications_posted = 2;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.snapchat.android";
    app.display_name = "Snapchat";
    app.workload_desc = "Take photo and compose text";
    app.apk_bytes = MiB(10);
    app.heap_bytes = MiB(14);
    app.heap_compressibility = 0.52;
    app.data_dir_bytes = MiB(5);
    app.sdcard_dir_bytes = MiB(4);
    app.workload.view_count = 25;
    app.workload.frames_drawn = 20;
    app.workload.clipboard_sets = 1;
    app.workload.notifications_posted = 3;
    app.workload.notifications_cancelled = 3;
    app.workload.queries_contacts = true;  // picking a recipient
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.skype.raider";
    app.display_name = "Skype";
    app.workload_desc = "View contact status";
    app.apk_bytes = MiB(25);
    app.heap_bytes = MiB(17);
    app.data_dir_bytes = MiB(8);
    app.workload.view_count = 40;
    app.workload.notifications_posted = 2;
    app.workload.audio_volume_changes = 2;
    app.workload.wifi_queries = 4;
    app.workload.alarms_set = 1;  // keep-alive
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.twitter.android";
    app.display_name = "Twitter";
    app.workload_desc = "View a user's Tweets";
    app.apk_bytes = MiB(15);
    app.heap_bytes = MiB(15);
    app.data_dir_bytes = MiB(7);
    app.workload.view_count = 65;
    app.workload.bytes_per_view = 64 * 1024;
    app.workload.frames_drawn = 28;
    app.workload.notifications_posted = 5;
    app.workload.notifications_cancelled = 3;
    app.workload.alarms_set = 2;  // poll
    app.workload.alarms_removed = 1;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "co.vine.android";
    app.display_name = "Vine";
    app.workload_desc = "Browse a user's video feed";
    app.apk_bytes = MiB(18);
    app.heap_bytes = MiB(16);
    app.heap_compressibility = 0.52;
    app.data_dir_bytes = MiB(10);
    app.workload.view_count = 50;
    app.workload.bytes_per_view = 112 * 1024;
    app.workload.frames_drawn = 40;
    app.workload.audio_volume_changes = 1;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.kiloo.subwaysurf";
    app.display_name = "Subway Surfers";
    app.workload_desc = "Play fast-paced obstacle game";
    app.apk_bytes = MiB(38);
    app.heap_bytes = MiB(26);
    app.heap_compressibility = 0.57;
    app.data_dir_bytes = MiB(14);
    app.preserves_egl_context = true;  // the unsupported GL case (§3.4)
    app.workload.uses_3d = true;
    app.workload.texture_bytes_3d = MiB(28);
    app.workload.frames_drawn = 150;
    app.workload.uses_sensors = true;
    app.workload.audio_volume_changes = 2;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.facebook.katana";
    app.display_name = "Facebook";
    app.workload_desc = "Post comment on news feed";
    app.apk_bytes = MiB(28);
    app.heap_bytes = MiB(20);
    app.data_dir_bytes = MiB(25);
    app.multi_process = true;  // the unsupported process model (§3.4)
    app.workload.view_count = 75;
    app.workload.bytes_per_view = 80 * 1024;
    app.workload.frames_drawn = 30;
    app.workload.notifications_posted = 6;
    app.workload.notifications_cancelled = 4;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "com.whatsapp";
    app.display_name = "WhatsApp";
    app.workload_desc = "Send text to friend";
    app.apk_bytes = MiB(15);
    app.heap_bytes = MiB(10);
    app.data_dir_bytes = MiB(18);
    app.sdcard_dir_bytes = MiB(6);
    app.workload.view_count = 30;
    app.workload.frames_drawn = 15;
    app.workload.notifications_posted = 5;
    app.workload.notifications_cancelled = 5;
    app.workload.alarms_set = 2;  // message retry + backup
    app.workload.vibrations = 2;
    app.workload.queries_contacts = true;
    apps.push_back(app);
  }
  {
    AppSpec app;
    app.package = "net.zedge.android";
    app.display_name = "ZEDGE";
    app.workload_desc = "Browse ringtones and select one";
    app.apk_bytes = MiB(8);
    app.heap_bytes = MiB(13);
    app.data_dir_bytes = MiB(6);
    app.sdcard_dir_bytes = MiB(10);
    app.workload.view_count = 45;
    app.workload.audio_volume_changes = 3;
    app.workload.notifications_posted = 1;
    apps.push_back(app);
  }
  return apps;
}

}  // namespace

const std::vector<AppSpec>& TopApps() {
  static const std::vector<AppSpec> kApps = BuildTopApps();
  return kApps;
}

const AppSpec* FindApp(const std::string& display_name) {
  for (const auto& app : TopApps()) {
    if (app.display_name == display_name) {
      return &app;
    }
  }
  return nullptr;
}

std::vector<const AppSpec*> MigratableApps() {
  std::vector<const AppSpec*> out;
  for (const auto& app : TopApps()) {
    if (!app.multi_process && !app.preserves_egl_context) {
      out.push_back(&app);
    }
  }
  return out;
}

}  // namespace flux
