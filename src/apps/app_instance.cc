#include "src/apps/app_instance.h"

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/base/synthetic_content.h"

namespace flux {

namespace {

// A do-nothing callback object apps hand to services (location listeners,
// vibration tokens, wakelock tokens...).
class StubListener : public BinderObject {
 public:
  explicit StubListener(std::string interface)
      : interface_(std::move(interface)) {}

  std::string_view interface_name() const override { return interface_; }

  Result<Parcel> OnTransact(std::string_view method, const Parcel& args,
                            const BinderCallContext& context) override {
    (void)method;
    (void)args;
    (void)context;
    return Parcel();
  }

 private:
  std::string interface_;
};

}  // namespace

AppInstance::AppInstance(Device& device, AppSpec spec)
    : device_(device), spec_(std::move(spec)) {}

std::string AppInstance::ApkPath() const {
  return "/data/app/" + spec_.package + "-1.apk";
}

std::string AppInstance::DataDir() const {
  return "/data/data/" + spec_.package;
}

std::string AppInstance::SdcardDir() const {
  return "/sdcard/Android/data/" + spec_.package;
}

Status AppInstance::Install() {
  if (installed_) {
    return OkStatus();
  }
  // The APK's bytes are a pure function of package+version: the same app
  // downloaded on two devices is byte-identical (pairing verifies by hash).
  FLUX_RETURN_IF_ERROR(device_.filesystem().WriteFile(
      ApkPath(),
      GenerateNamedContent(spec_.package + ":apk:v1", spec_.apk_bytes, 0.25)));
  FLUX_RETURN_IF_ERROR(WriteDataFiles());

  PackageInfo info;
  info.package = spec_.package;
  info.apk_path = ApkPath();
  info.version_code = 1;
  info.min_api_level = 14;
  info.install_size = spec_.apk_bytes;
  info.permissions = {"android.permission.INTERNET",
                      "android.permission.ACCESS_NETWORK_STATE",
                      "android.permission.VIBRATE"};
  info.multi_process = spec_.multi_process;
  info.preserves_egl_context = spec_.preserves_egl_context;
  FLUX_RETURN_IF_ERROR(device_.package_manager().Install(std::move(info)));
  uid_ = device_.package_manager().Find(spec_.package)->uid;
  installed_ = true;
  return OkStatus();
}

Status AppInstance::WriteDataFiles() {
  SimFilesystem& fs = device_.filesystem();
  FLUX_RETURN_IF_ERROR(fs.Mkdirs(DataDir() + "/files"));
  // Split the data dir into a handful of files (databases, caches).
  const int file_count = 4;
  for (int i = 0; i < file_count; ++i) {
    FLUX_RETURN_IF_ERROR(fs.WriteFile(
        StrFormat("%s/files/data_%d.db", DataDir().c_str(), i),
        GenerateNamedContent(StrFormat("%s:data:%d", spec_.package.c_str(), i),
                             spec_.data_dir_bytes / file_count, 0.6)));
  }
  if (spec_.sdcard_dir_bytes > 0) {
    FLUX_RETURN_IF_ERROR(fs.Mkdirs(SdcardDir()));
    FLUX_RETURN_IF_ERROR(fs.WriteFile(
        SdcardDir() + "/media.bin",
        GenerateNamedContent(spec_.package + ":sdcard",
                             spec_.sdcard_dir_bytes, 0.3)));
  }
  return OkStatus();
}

Status AppInstance::MapHeap() {
  SimProcess* process = device_.kernel().FindProcess(pid_);
  if (process == nullptr) {
    return Internal("app process vanished");
  }
  // The APK is mapped read-only (not checkpointed; restored by re-mapping
  // from the paired filesystem).
  MemorySegment apk;
  apk.name = ApkPath();
  apk.kind = SegmentKind::kFileBackedRo;
  apk.mapped_size = spec_.apk_bytes;
  apk.backing_path = ApkPath();
  process->address_space().Map(std::move(apk));

  // Dalvik heap: the dirty state whose bytes dominate the checkpoint image.
  MemorySegment heap;
  heap.name = "dalvik-heap";
  heap.kind = SegmentKind::kAnonPrivate;
  heap.content = GenerateNamedContent(spec_.package + ":heap",
                                      spec_.heap_bytes,
                                      spec_.heap_compressibility);
  process->address_space().Map(std::move(heap));
  return OkStatus();
}

Status AppInstance::Launch() {
  if (!installed_) {
    FLUX_RETURN_IF_ERROR(Install());
  }
  if (launched()) {
    return FailedPrecondition("app already launched: " + spec_.package);
  }
  SimProcess& process = device_.CreateAppProcess(spec_.package, uid_);
  pid_ = process.pid();
  pids_ = {pid_};
  FLUX_RETURN_IF_ERROR(MapHeap());

  if (spec_.multi_process) {
    // e.g. Facebook's separate web/media process.
    SimProcess& helper =
        device_.CreateAppProcess(spec_.package + ":remote", uid_);
    pids_.push_back(helper.pid());
    MemorySegment heap;
    heap.name = "dalvik-heap";
    heap.kind = SegmentKind::kAnonPrivate;
    heap.content =
        GenerateNamedContent(spec_.package + ":remote:heap", MiB(4), 0.55);
    helper.address_space().Map(std::move(heap));
  }

  thread_ = std::make_shared<ActivityThread>(device_.context(), pid_, uid_,
                                             spec_.package);
  FLUX_RETURN_IF_ERROR(thread_->Attach());
  FLUX_ASSIGN_OR_RETURN(main_token_, thread_->StartActivity("MainActivity"));
  FLUX_RETURN_IF_ERROR(thread_->InflateViews(
      main_token_, spec_.workload.view_count, spec_.workload.bytes_per_view,
      "View"));
  FLUX_RETURN_IF_ERROR(thread_->DrawFrame(main_token_));

  if (spec_.preserves_egl_context) {
    FLUX_RETURN_IF_ERROR(thread_->SetPreserveEglContextOnPause(true));
  }
  FLUX_LOG(kDebug, "apps") << spec_.display_name << " launched as pid "
                           << pid_ << " on " << device_.name();
  return OkStatus();
}

Status AppInstance::DrawFrames(int count) {
  for (int i = 0; i < count; ++i) {
    FLUX_RETURN_IF_ERROR(thread_->DrawFrame(main_token_));
  }
  return OkStatus();
}

Status AppInstance::RunWorkload(uint64_t seed) {
  if (!launched()) {
    return FailedPrecondition("app not launched");
  }
  const WorkloadProfile& wl = spec_.workload;
  Rng rng(seed ^ Fnv1a64(spec_.package));
  BinderDriver& binder = device_.binder();

  // Connectivity receiver: apps are built around transient connectivity.
  if (wl.registers_connectivity_receiver) {
    FLUX_RETURN_IF_ERROR(
        thread_->RegisterReceiver("android.net.conn.CONNECTIVITY_CHANGE"));
  }

  // Notifications: post, then cancel a prefix (exercising @drop pruning).
  for (int i = 0; i < wl.notifications_posted; ++i) {
    Parcel args;
    args.WriteNamed("id", static_cast<int32_t>(100 + i));
    args.WriteNamed("notification",
                    StrFormat("%s notification #%d",
                              spec_.display_name.c_str(), i));
    FLUX_ASSIGN_OR_RETURN(Parcel reply,
                          thread_->CallService("notification",
                                               "enqueueNotification",
                                               std::move(args)));
    (void)reply;
  }
  for (int i = 0; i < wl.notifications_cancelled; ++i) {
    Parcel args;
    args.WriteNamed("id", static_cast<int32_t>(100 + i));
    FLUX_ASSIGN_OR_RETURN(Parcel reply,
                          thread_->CallService("notification",
                                               "cancelNotification",
                                               std::move(args)));
    (void)reply;
  }

  // Alarms.
  const SimTime now = device_.clock().now();
  auto set_alarm = [&](const std::string& token, SimTime at) -> Status {
    Parcel args;
    args.WriteNamed("type", static_cast<int32_t>(0));
    args.WriteNamed("triggerAtTime", static_cast<int64_t>(at));
    args.WriteNamed("operation", token);
    FLUX_ASSIGN_OR_RETURN(Parcel reply,
                          thread_->CallService("alarm", "set",
                                               std::move(args)));
    (void)reply;
    return OkStatus();
  };
  for (int i = 0; i < wl.alarms_set; ++i) {
    const std::string token = MakePendingIntentToken(
        spec_.package, i, "alarm.action." + spec_.package);
    FLUX_RETURN_IF_ERROR(set_alarm(token, now + Seconds(600) + Seconds(i)));
    alarm_tokens_.push_back(token);
  }
  for (int i = 0; i < wl.expired_alarms; ++i) {
    // Will fire (or lapse) before any migration completes: the replay proxy
    // must not re-arm it on the guest.
    const std::string token = MakePendingIntentToken(
        spec_.package, 100 + i, "alarm.expired." + spec_.package);
    FLUX_RETURN_IF_ERROR(set_alarm(token, now + Millis(200)));
    alarm_tokens_.push_back(token);
  }
  for (int i = 0; i < wl.alarms_removed && i < wl.alarms_set; ++i) {
    Parcel args;
    args.WriteNamed("operation", alarm_tokens_[static_cast<size_t>(i)]);
    FLUX_ASSIGN_OR_RETURN(Parcel reply,
                          thread_->CallService("alarm", "remove",
                                               std::move(args)));
    (void)reply;
  }

  // Audio.
  for (int i = 0; i < wl.audio_volume_changes; ++i) {
    Parcel args;
    args.WriteNamed("streamType", kStreamMusic);
    args.WriteNamed("index",
                    static_cast<int32_t>(rng.NextInRange(
                        3, device_.profile().max_music_volume)));
    args.WriteNamed("flags", static_cast<int32_t>(0));
    FLUX_ASSIGN_OR_RETURN(Parcel reply,
                          thread_->CallService("audio", "setStreamVolume",
                                               std::move(args)));
    (void)reply;
  }

  // Clipboard.
  for (int i = 0; i < wl.clipboard_sets; ++i) {
    Parcel args;
    args.WriteNamed("clip", StrFormat("clip from %s #%d",
                                      spec_.display_name.c_str(), i));
    FLUX_ASSIGN_OR_RETURN(Parcel reply,
                          thread_->CallService("clipboard", "setPrimaryClip",
                                               std::move(args)));
    (void)reply;
  }

  // Location updates with app-owned listener objects.
  for (int i = 0; i < wl.location_requests; ++i) {
    auto listener = std::make_shared<StubListener>(
        "android.location.ILocationListener");
    const uint64_t node = binder.RegisterNode(pid_, listener);
    stub_objects_.push_back(std::move(listener));
    Parcel args;
    args.WriteNamed("provider", std::string(i == 0 ? "network" : "gps"));
    args.WriteNamed("minTime", static_cast<int64_t>(5000));
    args.WriteNamed("minDistance", 10.0);
    args.WriteNamed("listener",
                    ParcelObjectRef{ParcelObjectRef::Space::kNode, node});
    auto reply = thread_->CallService("location", "requestLocationUpdates",
                                      std::move(args));
    if (!reply.ok() && reply.status().code() != StatusCode::kUnavailable) {
      return reply.status();
    }
  }

  // Wifi queries (read-only: must NOT grow the record log).
  for (int i = 0; i < wl.wifi_queries; ++i) {
    Parcel args;
    FLUX_ASSIGN_OR_RETURN(Parcel reply,
                          thread_->CallService("wifi", "getWifiEnabledState",
                                               std::move(args)));
    (void)reply;
  }

  // Vibration with an app-owned token.
  for (int i = 0; i < wl.vibrations; ++i) {
    auto token_object = std::make_shared<StubListener>("android.os.IBinder");
    const uint64_t node = binder.RegisterNode(pid_, token_object);
    stub_objects_.push_back(std::move(token_object));
    Parcel args;
    args.WriteNamed("milliseconds", static_cast<int64_t>(80));
    args.WriteNamed("token",
                    ParcelObjectRef{ParcelObjectRef::Space::kNode, node});
    FLUX_ASSIGN_OR_RETURN(Parcel reply,
                          thread_->CallService("vibrator", "vibrate",
                                               std::move(args)));
    (void)reply;
  }

  // Transient ContentProvider interaction: acquire, query, close the
  // cursor, release — complete before any migration, so the app remains
  // migratable (§3.4).
  if (wl.queries_contacts) {
    Parcel acquire;
    acquire.WriteString("contacts");
    FLUX_ASSIGN_OR_RETURN(Parcel reply,
                          thread_->CallService("content", "acquireProvider",
                                               std::move(acquire)));
    FLUX_ASSIGN_OR_RETURN(ParcelObjectRef provider, reply.ReadObject());
    Parcel query;
    query.WriteString("");
    query.WriteString("");
    FLUX_ASSIGN_OR_RETURN(Parcel rows,
                          binder.Transact(pid_, provider.value, "query",
                                          std::move(query)));
    (void)rows;
    FLUX_ASSIGN_OR_RETURN(Parcel closed,
                          binder.Transact(pid_, provider.value, "closeCursor",
                                          Parcel()));
    (void)closed;
    FLUX_ASSIGN_OR_RETURN(Parcel released,
                          binder.Transact(pid_, provider.value, "release",
                                          Parcel()));
    (void)released;
    FLUX_RETURN_IF_ERROR(binder.ReleaseHandle(pid_, provider.value));
  }

  // Sensors: connection object + event channel descriptor (§3.2).
  if (wl.uses_sensors) {
    Parcel args;
    FLUX_ASSIGN_OR_RETURN(
        Parcel reply,
        thread_->CallService("sensorservice", "createSensorEventConnection",
                             std::move(args)));
    FLUX_ASSIGN_OR_RETURN(ParcelObjectRef connection, reply.ReadObject());
    sensor_connection_handle_ = connection.value;
    Parcel enable_args;
    enable_args.WriteNamed("handle", static_cast<int32_t>(1));
    FLUX_ASSIGN_OR_RETURN(
        Parcel enable_reply,
        binder.Transact(pid_, sensor_connection_handle_, "enableSensor",
                        std::move(enable_args)));
    (void)enable_reply;
    Parcel channel_args;
    FLUX_ASSIGN_OR_RETURN(
        Parcel channel_reply,
        binder.Transact(pid_, sensor_connection_handle_, "getSensorChannel",
                        std::move(channel_args)));
    FLUX_ASSIGN_OR_RETURN(sensor_channel_fd_, channel_reply.ReadFd());
  }

  // 3D games: big texture/buffer uploads.
  if (wl.uses_3d && thread_->renderer().gl_context != 0) {
    FLUX_RETURN_IF_ERROR(device_.egl().UploadTexture(
        thread_->renderer().gl_context, wl.texture_bytes_3d));
    FLUX_RETURN_IF_ERROR(device_.egl().AllocateVertexBuffer(
        thread_->renderer().gl_context, wl.texture_bytes_3d / 8));
    for (int i = 0; i < 4; ++i) {
      FLUX_RETURN_IF_ERROR(
          device_.egl().CompileShader(thread_->renderer().gl_context));
    }
  }

  FLUX_RETURN_IF_ERROR(DrawFrames(wl.frames_drawn));
  return OkStatus();
}

}  // namespace flux
