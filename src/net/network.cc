#include "src/net/network.h"

#include <algorithm>

namespace flux {

WifiNetwork::WifiNetwork() {
  // Defaults modeled on a congested urban campus network (§4): both bands
  // are heavily contended (the paper's transfers average ~13 Mbit/s of
  // goodput); the 2.4 GHz band — all a Nexus 7 (2012) can use — is worst.
  // Efficiency is the fraction of the *peak PHY rate* realized as goodput.
  band_2_4_ = BandConditions{0.15, Millis(15)};
  band_5_ = BandConditions{0.13, Millis(6)};
}

void WifiNetwork::set_tracer(Tracer* tracer) {
#if FLUX_TRACE_ENABLED
  trace_bytes_ =
      tracer ? tracer->counter(trace_names::kNetWireBytes) : nullptr;
  trace_transfers_ =
      tracer ? tracer->counter(trace_names::kNetTransfers) : nullptr;
  trace_ticks_ =
      tracer ? tracer->counter(trace_names::kNetTransferTicks) : nullptr;
  hist_tick_ = tracer ? tracer->histogram(trace_names::kHistNetTick) : nullptr;
#else
  (void)tracer;
#endif
}

void WifiNetwork::SetBandConditions(WifiBand band, BandConditions conditions) {
  (band == WifiBand::k2_4GHz ? band_2_4_ : band_5_) = conditions;
}

const BandConditions& WifiNetwork::conditions(WifiBand band) const {
  return band == WifiBand::k2_4GHz ? band_2_4_ : band_5_;
}

EffectiveLink WifiNetwork::LinkBetween(const RadioProfile& a,
                                       const RadioProfile& b) const {
  EffectiveLink link;
  const bool both_5ghz = a.supports_5ghz && b.supports_5ghz;
  link.band = both_5ghz ? WifiBand::k5GHz : WifiBand::k2_4GHz;
  const BandConditions& cond = conditions(link.band);

  // Endpoint PHY rates degrade on 2.4 GHz relative to the radio's peak.
  auto endpoint_rate = [&](const RadioProfile& radio) -> uint64_t {
    if (link.band == WifiBand::k2_4GHz && radio.supports_5ghz) {
      return radio.peak_phy_bps / 2;  // falling back to the narrow band
    }
    return radio.peak_phy_bps;
  };
  const uint64_t phy = std::min(endpoint_rate(a), endpoint_rate(b));
  link.goodput_bps =
      static_cast<uint64_t>(static_cast<double>(phy) * cond.efficiency);
  link.latency = cond.base_latency;
  return link;
}

SimDuration WifiNetwork::TransferTime(uint64_t bytes,
                                      const EffectiveLink& link) const {
  if (link.goodput_bps == 0) {
    return Seconds(3600);  // effectively unreachable
  }
  const double seconds =
      static_cast<double>(bytes) * 8.0 / static_cast<double>(link.goodput_bps);
  return link.latency + FromSecondsF(seconds);
}

void WifiNetwork::Transfer(SimClock& clock, uint64_t bytes,
                           const EffectiveLink& link) {
  clock.Advance(TransferTime(bytes, link));
  total_bytes_ += bytes;
  FLUX_TRACE_COUNTER_ADD(trace_bytes_, bytes);
  FLUX_TRACE_COUNTER_ADD(trace_transfers_, 1);
  FLUX_EVENT(flight_recorder_, flight_events::kSubNet,
             flight_events::kNetTransfer, EventSeverity::kDebug, bytes,
             link.goodput_bps);
}

bool WifiNetwork::UpAt(SimTime now) {
  if (has_outage_ && now >= outage_at_) {
    up_ = false;
    has_outage_ = false;
    FLUX_EVENT(flight_recorder_, flight_events::kSubNet,
               flight_events::kNetOutage, EventSeverity::kError, outage_at_,
               now);
  }
  return up_;
}

bool WifiNetwork::TransferWithTicks(SimClock& clock, uint64_t bytes,
                                    const EffectiveLink& link,
                                    SimDuration max_slice,
                                    const std::function<void()>& on_tick) {
  if (!UpAt(clock.now())) {
    return false;
  }
  SimDuration remaining = TransferTime(bytes, link);
  const SimDuration slice = max_slice > 0 ? max_slice : remaining;
  while (remaining > 0) {
    const SimDuration step = std::min(remaining, slice);
    clock.Advance(step);
    remaining -= step;
    FLUX_TRACE_COUNTER_ADD(trace_ticks_, 1);
    FLUX_TRACE_HIST_RECORD(hist_tick_, static_cast<uint64_t>(step));
    if (on_tick) {
      on_tick();
    }
    if (!UpAt(clock.now())) {
      return false;
    }
  }
  total_bytes_ += bytes;
  FLUX_TRACE_COUNTER_ADD(trace_bytes_, bytes);
  FLUX_TRACE_COUNTER_ADD(trace_transfers_, 1);
  FLUX_EVENT(flight_recorder_, flight_events::kSubNet,
             flight_events::kNetTransfer, EventSeverity::kDebug, bytes,
             link.goodput_bps);
  return true;
}

}  // namespace flux
