#include "src/net/network.h"

#include <algorithm>
#include <cmath>

#include "src/base/strings.h"

namespace flux {

// ----- hostile-network profiles -----

double NetProfile::MeanLossRate() const {
  double burst_share = 0.0;
  if (burst_enter > 0.0 && burst_enter + burst_exit > 0.0) {
    burst_share = burst_enter / (burst_enter + burst_exit) * burst_loss;
  }
  return std::min(0.9, loss_rate + burst_share);
}

double NetProfile::MeanRateFactor() const {
  return 1.0 - rate_dip_duty * (1.0 - rate_dip_factor);
}

namespace {

NetProfile CleanProfile() { return NetProfile{}; }

NetProfile CampusProfile() {
  NetProfile p;
  p.name = "campus";
  p.loss_rate = 0.002;
  p.jitter_mean = Millis(2);
  p.jitter_sigma = 0.4;
  p.rate_dip_factor = 0.8;
  p.rate_dip_duty = 0.05;
  return p;
}

NetProfile HomeProfile() {
  NetProfile p;
  p.name = "home";
  p.loss_rate = 0.005;
  p.burst_enter = 0.01;
  p.burst_exit = 0.3;
  p.burst_loss = 0.25;
  p.jitter_mean = Millis(4);
  p.jitter_sigma = 0.6;
  p.rate_dip_factor = 0.6;
  p.rate_dip_duty = 0.10;
  return p;
}

NetProfile LteProfile() {
  NetProfile p;
  p.name = "lte";
  p.loss_rate = 0.01;
  // Cell handovers cluster losses: a burst layer on top of the flat rate
  // (stationary share ~1.2%, keeping lte between home and hostile).
  p.burst_enter = 0.01;
  p.burst_exit = 0.25;
  p.burst_loss = 0.3;
  p.corrupt_fraction = 0.10;
  p.jitter_mean = Millis(15);
  p.jitter_sigma = 0.8;
  p.rate_dip_factor = 0.5;
  p.rate_dip_duty = 0.15;
  return p;
}

NetProfile HostileProfile() {
  NetProfile p;
  p.name = "hostile";
  p.loss_rate = 0.02;
  p.burst_enter = 0.02;
  p.burst_exit = 0.25;
  p.burst_loss = 0.5;
  p.corrupt_fraction = 0.25;
  p.jitter_mean = Millis(25);
  p.jitter_sigma = 1.0;
  p.rate_dip_factor = 0.35;
  p.rate_dip_duty = 0.25;
  p.outage_every = Seconds(25);
  p.outage_duration = Seconds(2);
  return p;
}

}  // namespace

Result<NetProfile> NetProfile::Named(std::string_view name) {
  if (name == "clean") return CleanProfile();
  if (name == "campus") return CampusProfile();
  if (name == "home") return HomeProfile();
  if (name == "lte") return LteProfile();
  if (name == "hostile") return HostileProfile();
  return InvalidArgument("unknown network profile: " + std::string(name));
}

const std::vector<std::string_view>& NetProfile::PresetNames() {
  static const std::vector<std::string_view> names = {
      "clean", "campus", "home", "lte", "hostile"};
  return names;
}

bool LinkShaper::NextFrameLost() {
  // Advance the Gilbert-Elliott chain, then draw the frame's fate from the
  // state it is in. The chain advances per frame regardless of outcome so
  // burst lengths are geometric in frames, as in the classic model.
  if (in_burst_) {
    if (rng_.NextBool(profile_.burst_exit)) {
      in_burst_ = false;
    }
  } else if (profile_.burst_enter > 0.0 &&
             rng_.NextBool(profile_.burst_enter)) {
    in_burst_ = true;
  }
  const double p =
      profile_.loss_rate + (in_burst_ ? profile_.burst_loss : 0.0);
  return rng_.NextBool(p);
}

double LinkShaper::NextRateFactor() {
  if (profile_.rate_dip_duty <= 0.0) {
    return 1.0;
  }
  return rng_.NextBool(profile_.rate_dip_duty)
             ? std::clamp(profile_.rate_dip_factor, 0.05, 1.0)
             : 1.0;
}

SimDuration LinkShaper::NextJitter() {
  if (profile_.jitter_mean <= 0) {
    return 0;
  }
  if (profile_.jitter_sigma <= 0.0) {
    return profile_.jitter_mean;
  }
  // Log-normal with mean jitter_mean: mu = ln(mean) - sigma^2/2.
  const double mean = ToSecondsF(profile_.jitter_mean);
  const double sigma = profile_.jitter_sigma;
  const double mu = std::log(mean) - sigma * sigma / 2.0;
  return FromSecondsF(rng_.NextLogNormal(mu, sigma));
}

Result<ChunkTransmission> TransmitFramedChunk(
    ByteSpan chunk, LinkShaper& shaper, const FrameStreamOptions& options,
    uint32_t base_seq, uint32_t base_group, FlightRecorder* recorder) {
  constexpr int kMaxRetransmitRounds = 16;
  ChunkTransmission tx;
  const std::vector<Bytes> frames =
      EncodeFrameStream(chunk, options, base_seq, base_group);
  const uint64_t data_count = DataFrameCount(chunk.size(), options);
  tx.next_seq = base_seq + static_cast<uint32_t>(data_count);
  const uint64_t k = std::max<uint32_t>(1, options.fec_group_data_frames);
  tx.next_group =
      base_group + (options.fec
                        ? static_cast<uint32_t>((data_count + k - 1) / k)
                        : 0);

  FrameAssembler assembler(chunk.size(), options, base_seq, base_group);
  // One transmission attempt: the frame either vanishes, arrives corrupt
  // (the CRC catches it — same as a loss, plus evidence), or lands.
  auto send = [&](const Bytes& frame, bool retransmit) -> Status {
    tx.wire_bytes += frame.size();
    ++tx.frames_sent;
    if (retransmit) {
      tx.retransmit_bytes += frame.size();
      ++tx.frames_retransmitted;
    }
    if (shaper.NextFrameLost()) {
      tx.lost_bytes += frame.size();
      ++tx.frames_lost;
      if (shaper.NextLossIsCorrupt()) {
        ++tx.crc_errors;
        // Deliver a corrupted copy so the CRC check really runs.
        Bytes mangled = frame;
        mangled[mangled.size() - 1] ^= 0xA5;
        Status accepted =
            assembler.Accept(ByteSpan(mangled.data(), mangled.size()));
        if (accepted.ok()) {
          return Internal("corrupted frame passed CRC validation");
        }
        FLUX_EVENT(recorder, flight_events::kSubNet,
                   flight_events::kNetFrameCrcError, EventSeverity::kWarning,
                   frame.size(), base_seq);
      }
      return OkStatus();
    }
    return assembler.Accept(ByteSpan(frame.data(), frame.size()));
  };

  for (const Bytes& frame : frames) {
    if (frame[kFrameOffType] == static_cast<uint8_t>(FrameType::kParity)) {
      ++tx.parity_frames;
    } else {
      ++tx.data_frames;
    }
    FLUX_RETURN_IF_ERROR(send(frame, /*retransmit=*/false));
  }

  // Retransmit what parity could not rebuild, as many rounds as it takes
  // (retransmissions are subject to the same loss process).
  std::vector<uint32_t> missing = assembler.MissingSeqs();
  for (int round = 0; !missing.empty(); ++round) {
    if (round >= kMaxRetransmitRounds) {
      return Unavailable(StrFormat(
          "loss storm: %zu frames undeliverable after %d retransmit rounds",
          missing.size(), kMaxRetransmitRounds));
    }
    for (const uint32_t seq : missing) {
      const uint64_t index = seq - base_seq;
      const uint64_t per = std::max<uint32_t>(1, options.frame_payload_bytes);
      const uint64_t begin = index * per;
      const uint64_t len = std::min<uint64_t>(per, chunk.size() - begin);
      FrameHeader h;
      h.type = FrameType::kData;
      h.seq = seq;
      h.flags = kFrameFlagRetransmit;
      if (options.fec) {
        h.flags |= kFrameFlagFecGroup;
        h.fec_group = base_group + static_cast<uint32_t>(index / k);
      }
      const Bytes frame = EncodeFrame(h, chunk.subspan(begin, len));
      FLUX_RETURN_IF_ERROR(send(frame, /*retransmit=*/true));
    }
    missing = assembler.MissingSeqs();
  }
  // Read after reconstruction: MissingSeqs is what runs the parity rebuild.
  tx.frames_recovered = assembler.recovered_frames();

  FLUX_ASSIGN_OR_RETURN(Bytes rebuilt, assembler.Finish());
  if (rebuilt.size() != chunk.size() ||
      !std::equal(rebuilt.begin(), rebuilt.end(), chunk.begin())) {
    return Internal("frame reassembly produced different bytes than sent");
  }
  return tx;
}

WifiNetwork::WifiNetwork() {
  // Defaults modeled on a congested urban campus network (§4): both bands
  // are heavily contended (the paper's transfers average ~13 Mbit/s of
  // goodput); the 2.4 GHz band — all a Nexus 7 (2012) can use — is worst.
  // Efficiency is the fraction of the *peak PHY rate* realized as goodput.
  band_2_4_ = BandConditions{0.15, Millis(15)};
  band_5_ = BandConditions{0.13, Millis(6)};
}

void WifiNetwork::set_tracer(Tracer* tracer) {
#if FLUX_TRACE_ENABLED
  trace_bytes_ =
      tracer ? tracer->counter(trace_names::kNetWireBytes) : nullptr;
  trace_transfers_ =
      tracer ? tracer->counter(trace_names::kNetTransfers) : nullptr;
  trace_ticks_ =
      tracer ? tracer->counter(trace_names::kNetTransferTicks) : nullptr;
  hist_tick_ = tracer ? tracer->histogram(trace_names::kHistNetTick) : nullptr;
#else
  (void)tracer;
#endif
}

void WifiNetwork::SetBandConditions(WifiBand band, BandConditions conditions) {
  (band == WifiBand::k2_4GHz ? band_2_4_ : band_5_) = conditions;
}

const BandConditions& WifiNetwork::conditions(WifiBand band) const {
  return band == WifiBand::k2_4GHz ? band_2_4_ : band_5_;
}

EffectiveLink WifiNetwork::LinkBetween(const RadioProfile& a,
                                       const RadioProfile& b) const {
  EffectiveLink link;
  const bool both_5ghz = a.supports_5ghz && b.supports_5ghz;
  link.band = both_5ghz ? WifiBand::k5GHz : WifiBand::k2_4GHz;
  const BandConditions& cond = conditions(link.band);

  // Endpoint PHY rates degrade on 2.4 GHz relative to the radio's peak.
  auto endpoint_rate = [&](const RadioProfile& radio) -> uint64_t {
    if (link.band == WifiBand::k2_4GHz && radio.supports_5ghz) {
      return radio.peak_phy_bps / 2;  // falling back to the narrow band
    }
    return radio.peak_phy_bps;
  };
  const uint64_t phy = std::min(endpoint_rate(a), endpoint_rate(b));
  link.goodput_bps =
      static_cast<uint64_t>(static_cast<double>(phy) * cond.efficiency);
  link.latency = cond.base_latency;
  return link;
}

SimDuration WifiNetwork::TransferTime(uint64_t bytes,
                                      const EffectiveLink& link) const {
  if (link.goodput_bps == 0) {
    return Seconds(3600);  // effectively unreachable
  }
  const double seconds =
      static_cast<double>(bytes) * 8.0 / static_cast<double>(link.goodput_bps);
  return link.latency + FromSecondsF(seconds);
}

void WifiNetwork::Transfer(SimClock& clock, uint64_t bytes,
                           const EffectiveLink& link) {
  clock.Advance(TransferTime(bytes, link));
  total_bytes_ += bytes;
  FLUX_TRACE_COUNTER_ADD(trace_bytes_, bytes);
  FLUX_TRACE_COUNTER_ADD(trace_transfers_, 1);
  FLUX_EVENT(flight_recorder_, flight_events::kSubNet,
             flight_events::kNetTransfer, EventSeverity::kDebug, bytes,
             link.goodput_bps);
}

void WifiNetwork::ScheduleOutageWindow(SimTime at, SimDuration duration) {
  if (duration <= 0) {
    return;
  }
  windows_.push_back(OutageWindow{at, duration});
}

void WifiNetwork::ApplyProfile(const NetProfile& profile, uint64_t seed) {
  profile_ = profile;
  profile_outage_phase_ = 0;
  if (profile_.outage_every > 0 && profile_.outage_duration > 0) {
    // Phase the recurring schedule into the second half of the first period
    // so short migrations on long-period profiles still meet an outage
    // occasionally, not deterministically at t=0.
    Rng rng(seed ^ 0x6f757467u);  // "outg"
    const uint64_t half = static_cast<uint64_t>(profile_.outage_every) / 2;
    profile_outage_phase_ =
        half + (half > 0 ? rng.NextBelow(half) : 0);
  }
}

bool WifiNetwork::InOutageWindow(SimTime now, SimTime* until,
                                 uint64_t* id) const {
  // Explicit windows first (tests sweep these), then the profile schedule.
  for (size_t i = 0; i < windows_.size(); ++i) {
    const OutageWindow& w = windows_[i];
    if (now >= w.at && now < w.at + static_cast<SimTime>(w.duration)) {
      *until = w.at + static_cast<SimTime>(w.duration);
      *id = i + 1;  // 0 means "none reported yet"
      return true;
    }
  }
  if (profile_.outage_every > 0 && profile_.outage_duration > 0 &&
      now >= profile_outage_phase_) {
    const uint64_t period = static_cast<uint64_t>(profile_.outage_every);
    const uint64_t since = now - profile_outage_phase_;
    const uint64_t k = since / period;
    if (since - k * period < static_cast<uint64_t>(profile_.outage_duration)) {
      *until = profile_outage_phase_ + k * period +
               static_cast<SimTime>(profile_.outage_duration);
      *id = (1ull << 32) + k;  // disjoint from explicit-window ids
      return true;
    }
  }
  return false;
}

bool WifiNetwork::UpAt(SimTime now) {
  if (has_outage_ && now >= outage_at_) {
    up_ = false;
    has_outage_ = false;
    FLUX_EVENT(flight_recorder_, flight_events::kSubNet,
               flight_events::kNetOutage, EventSeverity::kError, outage_at_,
               now);
  }
  if (!up_) {
    return false;
  }
  SimTime until = 0;
  uint64_t id = 0;
  if (InOutageWindow(now, &until, &id)) {
    if (id != last_outage_reported_) {
      last_outage_reported_ = id;
      FLUX_EVENT(flight_recorder_, flight_events::kSubNet,
                 flight_events::kNetOutage, EventSeverity::kError, now, until);
    }
    return false;
  }
  return true;
}

bool WifiNetwork::NextUpAt(SimTime now, SimTime* when) const {
  if (!up_) {
    return false;  // permanent until someone calls set_up(true)
  }
  if (has_outage_ && now >= outage_at_) {
    return false;  // a pending permanent outage is already due
  }
  // Chase chained windows: recovery from one window may land inside the
  // next (explicit windows can overlap the profile schedule).
  SimTime t = now;
  SimTime until = 0;
  uint64_t id = 0;
  int hops = 0;
  while (InOutageWindow(t, &until, &id)) {
    t = until;
    if (++hops > 1024) {
      return false;  // pathological overlap; treat as unrecoverable
    }
  }
  if (has_outage_ && t >= outage_at_) {
    return false;  // recovery would land after the permanent outage fires
  }
  *when = t;
  return true;
}

bool WifiNetwork::TransferWithTicks(SimClock& clock, uint64_t bytes,
                                    const EffectiveLink& link,
                                    SimDuration max_slice,
                                    const std::function<void()>& on_tick) {
  if (!UpAt(clock.now())) {
    return false;
  }
  SimDuration remaining = TransferTime(bytes, link);
  const SimDuration slice = max_slice > 0 ? max_slice : remaining;
  while (remaining > 0) {
    const SimDuration step = std::min(remaining, slice);
    clock.Advance(step);
    remaining -= step;
    FLUX_TRACE_COUNTER_ADD(trace_ticks_, 1);
    FLUX_TRACE_HIST_RECORD(hist_tick_, static_cast<uint64_t>(step));
    if (on_tick) {
      on_tick();
    }
    if (!UpAt(clock.now())) {
      return false;
    }
  }
  total_bytes_ += bytes;
  FLUX_TRACE_COUNTER_ADD(trace_bytes_, bytes);
  FLUX_TRACE_COUNTER_ADD(trace_transfers_, 1);
  FLUX_EVENT(flight_recorder_, flight_events::kSubNet,
             flight_events::kNetTransfer, EventSeverity::kDebug, bytes,
             link.goodput_bps);
  return true;
}

}  // namespace flux
