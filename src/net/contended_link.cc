#include "src/net/contended_link.h"

#include <algorithm>
#include <cmath>

#include "src/net/network.h"

namespace flux {

void ContendedFabric::ApplyProfile(const NetProfile& profile) {
  if (profile.IsClean()) {
    profiled_ = false;
    capacity_factor_ = 1.0;
    byte_overhead_ = 1.0;
    return;
  }
  profiled_ = true;
  capacity_factor_ = std::clamp(profile.MeanRateFactor(), 0.05, 1.0);
  // Framing overhead at the pipeline chunk size, then expected-loss
  // retransmissions on top.
  constexpr uint64_t kRepresentativeChunk = 256 * 1024;
  const FrameStreamOptions options;
  const double framed =
      static_cast<double>(FramedWireBytes(kRepresentativeChunk, options)) /
      static_cast<double>(kRepresentativeChunk);
  const double delivery = 1.0 - std::min(0.9, profile.MeanLossRate());
  byte_overhead_ = framed / delivery;
}

ContendedFabric::ApId ContendedFabric::AddAp(std::string name,
                                             uint64_t capacity_bps) {
  Ap ap;
  ap.name = std::move(name);
  ap.capacity_bps = capacity_bps;
  aps_.push_back(std::move(ap));
  return static_cast<ApId>(aps_.size() - 1);
}

int ContendedFabric::ActiveFlows(ApId ap) const {
  return ap < aps_.size() ? aps_[ap].active : 0;
}

ContendedFabric::FlowId ContendedFabric::StartFlow(SimTime now, uint64_t bytes,
                                                   uint64_t peak_bps,
                                                   ApId home_ap,
                                                   ApId guest_ap) {
  if (bytes == 0) {
    return kInvalidFlow;
  }
  if (profiled_) {
    bytes = static_cast<uint64_t>(
        std::ceil(static_cast<double>(bytes) * byte_overhead_));
  }
  // Fix everyone's progress at the old rates before membership changes.
  RecomputeRates(now);
  Flow flow;
  flow.id = next_flow_++;
  flow.home_ap = home_ap;
  flow.guest_ap = guest_ap;
  flow.peak_bps = std::max<uint64_t>(peak_bps, 1);
  flow.total_bytes = bytes;
  flow.remaining_bytes = static_cast<double>(bytes);
  flow.settled_at = now;
  flows_.push_back(flow);
  if (home_ap < aps_.size()) {
    ++aps_[home_ap].active;
  }
  if (guest_ap < aps_.size() && guest_ap != home_ap) {
    ++aps_[guest_ap].active;
  }
  RecomputeRates(now);
  return flow.id;
}

void ContendedFabric::RecomputeRates(SimTime now) {
  // Settle progress at the rates in force since each flow's last settle
  // point, then hand out fresh equal shares.
  for (Flow& flow : flows_) {
    if (now > flow.settled_at && flow.rate_bps > 0) {
      const double elapsed_s = ToSecondsF(
          static_cast<SimDuration>(now - flow.settled_at));
      flow.remaining_bytes =
          std::max(0.0, flow.remaining_bytes - flow.rate_bps / 8.0 * elapsed_s);
    }
    flow.settled_at = now;
  }
  for (Flow& flow : flows_) {
    double rate = static_cast<double>(flow.peak_bps);
    const ApId crossed[2] = {flow.home_ap, flow.guest_ap};
    for (int i = 0; i < (flow.home_ap == flow.guest_ap ? 1 : 2); ++i) {
      if (crossed[i] < aps_.size() && aps_[crossed[i]].active > 0) {
        double cap = static_cast<double>(aps_[crossed[i]].capacity_bps);
        if (profiled_) {
          cap *= capacity_factor_;
        }
        rate = std::min(rate, cap / aps_[crossed[i]].active);
      }
    }
    flow.rate_bps = std::max(rate, 1.0);
  }
}

bool ContendedFabric::NextCompletion(SimTime now, SimTime* when) const {
  bool any = false;
  SimTime best = 0;
  for (const Flow& flow : flows_) {
    // ceil to a whole microsecond so Settle at the reported instant always
    // sees the flow drained.
    const double seconds = flow.remaining_bytes / (flow.rate_bps / 8.0);
    const SimTime done =
        now + static_cast<SimTime>(std::ceil(seconds * 1e6));
    if (!any || done < best) {
      best = done;
      any = true;
    }
  }
  if (any) {
    *when = best;
  }
  return any;
}

void ContendedFabric::Settle(SimTime now, std::vector<FinishedFlow>* out) {
  RecomputeRates(now);
  // Sub-byte residue is wire rounding, not payload: a flow is done once
  // less than a byte remains.
  std::vector<Flow> still_active;
  still_active.reserve(flows_.size());
  std::vector<FinishedFlow> done;
  for (Flow& flow : flows_) {
    if (flow.remaining_bytes < 1.0) {
      FinishedFlow fin;
      fin.id = flow.id;
      fin.finished_at = now;
      fin.bytes = flow.total_bytes;
      done.push_back(fin);
      bytes_carried_ += flow.total_bytes;
      if (flow.home_ap < aps_.size()) {
        --aps_[flow.home_ap].active;
      }
      if (flow.guest_ap < aps_.size() && flow.guest_ap != flow.home_ap) {
        --aps_[flow.guest_ap].active;
      }
    } else {
      still_active.push_back(flow);
    }
  }
  if (!done.empty()) {
    flows_ = std::move(still_active);
    RecomputeRates(now);
    std::sort(done.begin(), done.end(),
              [](const FinishedFlow& a, const FinishedFlow& b) {
                return a.finished_at != b.finished_at
                           ? a.finished_at < b.finished_at
                           : a.id < b.id;
              });
    out->insert(out->end(), done.begin(), done.end());
  }
}

}  // namespace flux
