// Contended access-point bandwidth model for concurrent migrations.
//
// The single-migration WifiNetwork hands each transfer the whole link: fine
// when migrations run one at a time, wrong the moment a coordinator admits
// several — transfers sharing an AP must stretch each other's wire phases.
// ContendedFabric models that: a set of APs, each with an airtime capacity,
// and flows that each cross one or two APs (home's and guest's). Rates
// follow 802.11 airtime fairness: every active flow on an AP is entitled to
// an equal share of its capacity, and a flow's rate is the minimum of its
// own station peak and its share on every AP it crosses:
//
//   rate(f) = min(peak_f, cap_A / n_A  for each AP A that f crosses)
//
// (A station that cannot fill its share wastes the airtime, which is how
// contended 2.4 GHz actually behaves — and it keeps the contention math
// exactly pinnable by tests: two equal flows through one AP each run at
// cap/2, doubling the wire phase.)
//
// The fabric is a pure rate/progress model for a discrete-event loop:
// Settle(now) accrues progress at the rates fixed since the last membership
// change, StartFlow/Collect change membership and recompute rates, and
// NextCompletion() tells the scheduler when the earliest flow will finish —
// the coordinator's "transfer complete" wake-ups come from exactly that.
#ifndef FLUX_SRC_NET_CONTENDED_LINK_H_
#define FLUX_SRC_NET_CONTENDED_LINK_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/sim_clock.h"

namespace flux {

struct NetProfile;

class ContendedFabric {
 public:
  using ApId = uint32_t;
  using FlowId = uint64_t;
  static constexpr FlowId kInvalidFlow = 0;

  struct FinishedFlow {
    FlowId id = kInvalidFlow;
    SimTime finished_at = 0;
    uint64_t bytes = 0;
  };

  ApId AddAp(std::string name, uint64_t capacity_bps);
  size_t ap_count() const { return aps_.size(); }
  // Live flows currently crossing `ap` (placement uses this as a load
  // tiebreak).
  int ActiveFlows(ApId ap) const;

  // Starts a flow of `bytes` between stations on `home_ap` and `guest_ap`
  // (equal ids = one AP), limited to `peak_bps` (the slower endpoint's
  // station rate). Settles other flows to `now` first, then recomputes
  // every rate. Zero-byte flows complete at `now` + nothing: they are
  // finished immediately and never enter the fabric.
  FlowId StartFlow(SimTime now, uint64_t bytes, uint64_t peak_bps, ApId home_ap,
                   ApId guest_ap);

  // Earliest instant any active flow completes at current rates; `now` must
  // be the last settle point. Returns false when no flows are active.
  bool NextCompletion(SimTime now, SimTime* when) const;

  // Accrues progress to `now` and removes flows that have finished,
  // appending them to `out` (completion order: finish time, then id).
  // Recomputes rates when membership changed.
  void Settle(SimTime now, std::vector<FinishedFlow>* out);

  size_t active_flows() const { return flows_.size(); }
  uint64_t bytes_carried() const { return bytes_carried_; }

  // Installs a hostile-network profile on every AP. The fabric is a mean-
  // rate model (it settles continuous progress, not per-frame events), so a
  // profile lands as two deterministic factors: every AP capacity is scaled
  // by the profile's MeanRateFactor, and every flow's byte count is
  // inflated by the framing overhead plus expected-loss retransmissions
  // (FramedWireBytes / (1 - MeanLossRate)). Untouched — bit for bit — when
  // never called or when the profile is clean.
  void ApplyProfile(const NetProfile& profile);
  // The wire-byte multiplier ApplyProfile charges on new flows (1.0 when
  // unprofiled).
  double byte_overhead() const { return byte_overhead_; }

 private:
  struct Ap {
    std::string name;
    uint64_t capacity_bps = 0;
    int active = 0;
  };
  struct Flow {
    FlowId id = kInvalidFlow;
    ApId home_ap = 0;
    ApId guest_ap = 0;
    uint64_t peak_bps = 0;
    uint64_t total_bytes = 0;
    double remaining_bytes = 0;
    double rate_bps = 0;
    SimTime settled_at = 0;
  };

  void RecomputeRates(SimTime now);

  std::vector<Ap> aps_;
  std::vector<Flow> flows_;
  FlowId next_flow_ = 1;
  uint64_t bytes_carried_ = 0;
  // Hostile-profile factors; identity until ApplyProfile installs a
  // non-clean profile.
  bool profiled_ = false;
  double capacity_factor_ = 1.0;
  double byte_overhead_ = 1.0;
};

}  // namespace flux

#endif  // FLUX_SRC_NET_CONTENDED_LINK_H_
