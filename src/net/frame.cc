#include "src/net/frame.h"

#include <algorithm>

#include "src/base/hash.h"
#include "src/base/strings.h"

namespace flux {

namespace {

void PutU16Le(uint8_t* out, uint16_t v) {
  out[0] = static_cast<uint8_t>(v);
  out[1] = static_cast<uint8_t>(v >> 8);
}

void PutU32Le(uint8_t* out, uint32_t v) {
  out[0] = static_cast<uint8_t>(v);
  out[1] = static_cast<uint8_t>(v >> 8);
  out[2] = static_cast<uint8_t>(v >> 16);
  out[3] = static_cast<uint8_t>(v >> 24);
}

uint16_t GetU16Le(const uint8_t* in) {
  return static_cast<uint16_t>(in[0] | (uint16_t{in[1]} << 8));
}

uint32_t GetU32Le(const uint8_t* in) {
  return in[0] | (uint32_t{in[1]} << 8) | (uint32_t{in[2]} << 16) |
         (uint32_t{in[3]} << 24);
}

}  // namespace

void AppendFrame(Bytes& out, FrameHeader header, ByteSpan payload) {
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.payload_crc = Crc32c(payload);
  const size_t base = out.size();
  out.resize(base + kFrameHeaderSize + payload.size());
  uint8_t* h = out.data() + base;
  PutU32Le(h + kFrameOffMagic, kFrameMagic);
  h[kFrameOffVersion] = header.version;
  h[kFrameOffType] = static_cast<uint8_t>(header.type);
  PutU16Le(h + kFrameOffFlags, header.flags);
  PutU32Le(h + kFrameOffSeq, header.seq);
  PutU32Le(h + kFrameOffFecGroup, header.fec_group);
  PutU32Le(h + kFrameOffPayloadLen, header.payload_len);
  PutU32Le(h + kFrameOffCrc, header.payload_crc);
  if (!payload.empty()) {
    std::copy(payload.begin(), payload.end(),
              out.begin() + static_cast<ptrdiff_t>(base + kFrameHeaderSize));
  }
}

Bytes EncodeFrame(const FrameHeader& header, ByteSpan payload) {
  Bytes out;
  out.reserve(kFrameHeaderSize + payload.size());
  AppendFrame(out, header, payload);
  return out;
}

Result<FrameView> ParseFrame(ByteSpan wire) {
  if (wire.size() < kFrameHeaderSize) {
    return Corrupt(StrFormat("frame truncated: %zu bytes, header needs %zu",
                             wire.size(), kFrameHeaderSize));
  }
  const uint8_t* h = wire.data();
  if (GetU32Le(h + kFrameOffMagic) != kFrameMagic) {
    return Corrupt("bad frame magic");
  }
  FrameView view;
  view.header.version = h[kFrameOffVersion];
  if (view.header.version != kFrameVersion) {
    return Unsupported(StrFormat("frame version %u not supported (speak %u)",
                                 view.header.version, kFrameVersion));
  }
  const uint8_t type = h[kFrameOffType];
  if (type < static_cast<uint8_t>(FrameType::kData) ||
      type > static_cast<uint8_t>(FrameType::kComplete)) {
    return Corrupt(StrFormat("unknown frame type %u", type));
  }
  view.header.type = static_cast<FrameType>(type);
  view.header.flags = GetU16Le(h + kFrameOffFlags);
  view.header.seq = GetU32Le(h + kFrameOffSeq);
  view.header.fec_group = GetU32Le(h + kFrameOffFecGroup);
  view.header.payload_len = GetU32Le(h + kFrameOffPayloadLen);
  if (wire.size() < kFrameHeaderSize + view.header.payload_len) {
    return Corrupt(StrFormat("frame payload truncated: %u declared, %zu left",
                             view.header.payload_len,
                             wire.size() - kFrameHeaderSize));
  }
  view.payload = wire.subspan(kFrameHeaderSize, view.header.payload_len);
  view.header.payload_crc = GetU32Le(h + kFrameOffCrc);
  if (Crc32c(view.payload) != view.header.payload_crc) {
    return Corrupt("frame payload CRC32C mismatch");
  }
  return view;
}

uint64_t DataFrameCount(uint64_t payload_bytes,
                        const FrameStreamOptions& options) {
  const uint64_t per = std::max<uint32_t>(1, options.frame_payload_bytes);
  return payload_bytes == 0 ? 0 : (payload_bytes + per - 1) / per;
}

uint64_t FramedWireBytes(uint64_t payload_bytes,
                         const FrameStreamOptions& options) {
  const uint64_t frames = DataFrameCount(payload_bytes, options);
  uint64_t wire = payload_bytes + frames * kFrameHeaderSize;
  if (options.fec && frames > 0) {
    const uint64_t k = std::max<uint32_t>(1, options.fec_group_data_frames);
    const uint64_t groups = (frames + k - 1) / k;
    // A parity payload is as long as its group's longest data payload: the
    // full frame size for every group except possibly the last.
    const uint64_t per = std::max<uint32_t>(1, options.frame_payload_bytes);
    const uint64_t last_group_first = (groups - 1) * k * per;
    const uint64_t last_parity =
        std::min<uint64_t>(per, payload_bytes - last_group_first);
    wire += (groups - 1) * (kFrameHeaderSize + per);
    wire += kFrameHeaderSize + last_parity;
  }
  return wire;
}

std::vector<Bytes> EncodeFrameStream(ByteSpan payload,
                                     const FrameStreamOptions& options,
                                     uint32_t base_seq, uint32_t base_group) {
  std::vector<Bytes> frames;
  const uint64_t per = std::max<uint32_t>(1, options.frame_payload_bytes);
  const uint64_t k = std::max<uint32_t>(1, options.fec_group_data_frames);
  const uint64_t count = DataFrameCount(payload.size(), options);
  frames.reserve(count + (options.fec ? (count + k - 1) / k : 0));

  Bytes parity;       // XOR accumulator for the open group
  uint64_t in_group = 0;
  uint32_t group = base_group;
  auto close_group = [&]() {
    if (!options.fec || in_group == 0) {
      return;
    }
    FrameHeader h;
    h.type = FrameType::kParity;
    h.flags = kFrameFlagFecGroup;
    h.seq = 0;  // parity frames sit outside the data seq space
    h.fec_group = group;
    frames.push_back(EncodeFrame(h, ByteSpan(parity.data(), parity.size())));
    parity.clear();
    in_group = 0;
    ++group;
  };

  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t begin = i * per;
    const uint64_t len = std::min<uint64_t>(per, payload.size() - begin);
    const ByteSpan slice = payload.subspan(begin, len);
    FrameHeader h;
    h.type = FrameType::kData;
    h.seq = base_seq + static_cast<uint32_t>(i);
    if (options.fec) {
      h.flags = kFrameFlagFecGroup;
      h.fec_group = group;
      if (in_group + 1 == k || i + 1 == count) {
        h.flags |= kFrameFlagGroupEnd;
      }
      // XOR into the zero-padded parity accumulator.
      if (parity.size() < len) {
        parity.resize(len, 0);
      }
      for (uint64_t b = 0; b < len; ++b) {
        parity[b] ^= slice[b];
      }
      ++in_group;
    }
    frames.push_back(EncodeFrame(h, slice));
    if (options.fec && (in_group == k || i + 1 == count)) {
      close_group();
    }
  }
  return frames;
}

FrameAssembler::FrameAssembler(uint64_t expected_payload_bytes,
                               const FrameStreamOptions& options,
                               uint32_t base_seq, uint32_t base_group)
    : expected_bytes_(expected_payload_bytes),
      options_(options),
      base_seq_(base_seq),
      base_group_(base_group) {
  frame_count_ = DataFrameCount(expected_bytes_, options_);
  data_.resize(frame_count_);
  have_.resize(frame_count_, false);
  const uint64_t k = std::max<uint32_t>(1, options_.fec_group_data_frames);
  parity_.resize(options_.fec ? (frame_count_ + k - 1) / k : 0);
}

uint64_t FrameAssembler::ExpectedLen(uint64_t index) const {
  const uint64_t per = std::max<uint32_t>(1, options_.frame_payload_bytes);
  const uint64_t begin = index * per;
  return std::min<uint64_t>(per, expected_bytes_ - begin);
}

Status FrameAssembler::Accept(ByteSpan wire) {
  FLUX_ASSIGN_OR_RETURN(FrameView view, ParseFrame(wire));
  const uint64_t k = std::max<uint32_t>(1, options_.fec_group_data_frames);
  if (view.header.type == FrameType::kParity) {
    if (!options_.fec) {
      return Corrupt("parity frame in a stream encoded without FEC");
    }
    const uint64_t group = view.header.fec_group;
    if (group < base_group_ || group - base_group_ >= parity_.size()) {
      return Corrupt(StrFormat("parity frame for out-of-range group %llu",
                               static_cast<unsigned long long>(group)));
    }
    parity_[group - base_group_] =
        Bytes(view.payload.begin(), view.payload.end());
    return OkStatus();
  }
  if (view.header.type != FrameType::kData) {
    return Corrupt("unexpected control frame inside a data stream");
  }
  const uint64_t seq = view.header.seq;
  if (seq < base_seq_ || seq - base_seq_ >= frame_count_) {
    return Corrupt(StrFormat("data frame seq %llu outside stream window",
                             static_cast<unsigned long long>(seq)));
  }
  const uint64_t index = seq - base_seq_;
  if (view.payload.size() != ExpectedLen(index)) {
    return Corrupt(StrFormat(
        "data frame %llu carries %zu bytes, expected %llu",
        static_cast<unsigned long long>(seq), view.payload.size(),
        static_cast<unsigned long long>(ExpectedLen(index))));
  }
  if (options_.fec && view.header.fec_group != base_group_ + index / k) {
    return Corrupt("data frame's fec_group disagrees with its seq");
  }
  data_[index] = Bytes(view.payload.begin(), view.payload.end());
  have_[index] = true;
  return OkStatus();
}

void FrameAssembler::Reconstruct() {
  if (!options_.fec) {
    return;
  }
  const uint64_t k = std::max<uint32_t>(1, options_.fec_group_data_frames);
  for (uint64_t g = 0; g < parity_.size(); ++g) {
    if (parity_[g].empty()) {
      continue;
    }
    const uint64_t first = g * k;
    const uint64_t last = std::min(first + k, frame_count_);
    uint64_t missing = frame_count_;  // sentinel: none yet
    int missing_count = 0;
    for (uint64_t i = first; i < last; ++i) {
      if (!have_[i]) {
        missing = i;
        ++missing_count;
      }
    }
    if (missing_count != 1) {
      continue;  // intact, or beyond what one parity frame can fix
    }
    // XOR of parity and the surviving payloads (zero-padded) is the lost
    // payload, truncated to its expected length.
    Bytes rebuilt = parity_[g];
    for (uint64_t i = first; i < last; ++i) {
      if (i == missing) {
        continue;
      }
      for (uint64_t b = 0; b < data_[i].size(); ++b) {
        rebuilt[b] ^= data_[i][b];
      }
    }
    rebuilt.resize(ExpectedLen(missing));
    data_[missing] = std::move(rebuilt);
    have_[missing] = true;
    ++recovered_frames_;
  }
}

std::vector<uint32_t> FrameAssembler::MissingSeqs() {
  Reconstruct();
  std::vector<uint32_t> missing;
  for (uint64_t i = 0; i < frame_count_; ++i) {
    if (!have_[i]) {
      missing.push_back(base_seq_ + static_cast<uint32_t>(i));
    }
  }
  return missing;
}

Result<Bytes> FrameAssembler::Finish() {
  Reconstruct();
  Bytes out;
  out.reserve(expected_bytes_);
  for (uint64_t i = 0; i < frame_count_; ++i) {
    if (!have_[i]) {
      return Unavailable(StrFormat(
          "stream incomplete: data frame %llu still missing",
          static_cast<unsigned long long>(base_seq_ + i)));
    }
    out.insert(out.end(), data_[i].begin(), data_[i].end());
  }
  return out;
}

}  // namespace flux
