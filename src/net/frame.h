// Versioned wire framing with CRC32C validation and XOR-parity FEC.
//
// Everything a migration puts on the air — image chunks, the dedup
// manifest, resume handshakes — travels inside a fixed 24-byte framed
// header (PROTOCOL.md §3 is the normative layout; scripts/check_docs.py
// keeps the spec and the constants below in lock-step). The design follows
// the SNIPPETS.md §3 idiom (ltfec frame_io.h): explicit little-endian byte
// offsets, CRC32C over the payload ONLY (a corrupted header already fails
// the magic/version/length checks), and a parity frame closing each FEC
// group so one lost frame per group is reconstructed without a retransmit
// round trip.
//
// The codec is pure bytes-in/bytes-out — no clock, no network — so the
// same functions serve the simulation's hostile-link model and the unit
// tests that pin the layout byte for byte (tests/frame_test.cc).
#ifndef FLUX_SRC_NET_FRAME_H_
#define FLUX_SRC_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"

namespace flux {

// ----- layout constants (PROTOCOL.md §3; check_docs.py parses these) -----

// "FLXF" when the little-endian u32 is written to the wire.
inline constexpr uint32_t kFrameMagic = 0x46584C46;
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderSize = 24;

// Field offsets within the header (sizes are implied by the next offset;
// the payload begins at kFrameHeaderSize).
inline constexpr size_t kFrameOffMagic = 0;        // u32  LE
inline constexpr size_t kFrameOffVersion = 4;      // u8
inline constexpr size_t kFrameOffType = 5;         // u8
inline constexpr size_t kFrameOffFlags = 6;        // u16  LE
inline constexpr size_t kFrameOffSeq = 8;          // u32  LE
inline constexpr size_t kFrameOffFecGroup = 12;    // u32  LE
inline constexpr size_t kFrameOffPayloadLen = 16;  // u32  LE
inline constexpr size_t kFrameOffCrc = 20;         // u32  LE, CRC32C(payload)

// Sentinel fec_group for frames outside any parity group.
inline constexpr uint32_t kFrameNoFecGroup = 0xFFFFFFFFu;

// Frame types (PROTOCOL.md §3.2). Control payloads are ArchiveWriter
// sections; kData carries a slice of the migration payload stream.
enum class FrameType : uint8_t {
  kData = 1,         // payload-stream slice
  kParity = 2,       // XOR of its group's (zero-padded) data payloads
  kManifest = 3,     // dedup manifest: chunk-hash list
  kManifestAck = 4,  // availability bitmap answering a manifest
  kResumeOffer = 5,  // resume handshake: manifest re-offer + next seq
  kResumeAck = 6,    // chunks the guest cache already holds + next seq
  kComplete = 7,     // stream end marker
};

// Header flag bits (PROTOCOL.md §3.3).
inline constexpr uint16_t kFrameFlagFecGroup = 1u << 0;     // in a parity group
inline constexpr uint16_t kFrameFlagGroupEnd = 1u << 1;     // last data frame of its group
inline constexpr uint16_t kFrameFlagRetransmit = 1u << 2;   // re-sent after loss

struct FrameHeader {
  uint8_t version = kFrameVersion;
  FrameType type = FrameType::kData;
  uint16_t flags = 0;
  uint32_t seq = 0;
  uint32_t fec_group = kFrameNoFecGroup;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;  // CRC32C over the payload only
};

// One parsed frame; `payload` views into the caller's buffer.
struct FrameView {
  FrameHeader header;
  ByteSpan payload;
};

// Appends header + payload to `out`, computing payload_len and the CRC.
void AppendFrame(Bytes& out, FrameHeader header, ByteSpan payload);
Bytes EncodeFrame(const FrameHeader& header, ByteSpan payload);

// Parses and validates one frame at the start of `wire`: magic, version,
// length, then CRC32C over the payload. kUnsupported for a version the
// receiver does not speak (negotiation, PROTOCOL.md §2), kCorrupt for a
// truncated header/payload, a bad magic, or a CRC mismatch — all clean
// Status causes the migration routes through forensics.
Result<FrameView> ParseFrame(ByteSpan wire);

// ----- stream encoding -----

struct FrameStreamOptions {
  uint32_t frame_payload_bytes = 16 * 1024;  // data bytes per frame
  uint32_t fec_group_data_frames = 8;        // k data frames per parity
  bool fec = true;                           // close groups with parity
};

// Splits `payload` into kData frames of at most frame_payload_bytes,
// closing every run of fec_group_data_frames with one kParity frame when
// fec is on (a short trailing group still gets parity). seq numbers start
// at base_seq and groups at base_group; both count data frames/groups only
// so a caller can frame a chunked stream segment by segment. FEC groups
// never span a call — each chunk reconstructs independently.
std::vector<Bytes> EncodeFrameStream(ByteSpan payload,
                                     const FrameStreamOptions& options,
                                     uint32_t base_seq, uint32_t base_group);

// Number of data frames EncodeFrameStream will cut `payload_bytes` into.
uint64_t DataFrameCount(uint64_t payload_bytes,
                        const FrameStreamOptions& options);

// Pure arithmetic: total wire bytes of `payload_bytes` framed under
// `options` with zero losses — headers plus parity payloads. The hostile
// link model charges this for control traffic it never materializes.
uint64_t FramedWireBytes(uint64_t payload_bytes,
                         const FrameStreamOptions& options);

// ----- reassembly -----

// Rebuilds a contiguous payload from frames arriving with gaps. Feed every
// surviving frame via Accept (order does not matter), then Finish:
//  - a group missing exactly one data frame is rebuilt from its parity;
//  - corrupt frames fail Accept with kCorrupt (the caller counts and
//    retransmits them — corruption never reaches the payload);
//  - MissingSeqs names the data frames still unrecoverable, so a sender
//    can retransmit exactly those.
// The expected payload size is fixed at construction (chunk sizes travel
// in the manifest), which also fixes every data frame's expected length.
class FrameAssembler {
 public:
  FrameAssembler(uint64_t expected_payload_bytes,
                 const FrameStreamOptions& options, uint32_t base_seq,
                 uint32_t base_group);

  // Validates (ParseFrame) and stores one frame. Unknown seq/group ranges
  // and length mismatches are kCorrupt; duplicates are idempotent.
  Status Accept(ByteSpan wire);

  // Runs parity reconstruction, then lists data seqs still missing.
  std::vector<uint32_t> MissingSeqs();

  // Frames rebuilt from parity so far (for net.frame counters).
  uint64_t recovered_frames() const { return recovered_frames_; }

  // Reassembles the payload; kUnavailable while frames are still missing.
  Result<Bytes> Finish();

 private:
  uint64_t ExpectedLen(uint64_t index) const;
  void Reconstruct();

  uint64_t expected_bytes_ = 0;
  FrameStreamOptions options_;
  uint32_t base_seq_ = 0;
  uint32_t base_group_ = 0;
  uint64_t frame_count_ = 0;
  std::vector<Bytes> data_;          // by data-frame index; empty = missing
  std::vector<bool> have_;
  std::vector<Bytes> parity_;        // by group index; empty = missing
  uint64_t recovered_frames_ = 0;
};

}  // namespace flux

#endif  // FLUX_SRC_NET_FRAME_H_
