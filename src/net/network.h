// Radio / network model.
//
// The paper's evaluation ran on a congested campus 802.11n WiFi network;
// transfer time dominated migration cost (Figure 13), and the Nexus 7
// (2012), limited to the crowded 2.4 GHz band, saw the slowest transfers.
// The model captures exactly those effects: each device has a radio profile
// (supported bands, peak PHY rate), a shared WiFi network applies a
// congestion-derived efficiency factor per band, and a transfer between two
// devices is paced by the weaker endpoint.
#ifndef FLUX_SRC_NET_NETWORK_H_
#define FLUX_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/base/result.h"
#include "src/base/sim_clock.h"
#include "src/flux/flight_recorder.h"
#include "src/flux/trace.h"

namespace flux {

enum class WifiBand : uint8_t {
  k2_4GHz = 0,
  k5GHz,
};

enum class WifiStandard : uint8_t {
  k80211n = 0,
  k80211ac,
};

struct RadioProfile {
  WifiStandard standard = WifiStandard::k80211n;
  bool supports_5ghz = true;
  // Peak achievable PHY rate in bits/sec on the best supported band.
  uint64_t peak_phy_bps = 150'000'000;
};

// Conditions on the shared WiFi network (per band).
struct BandConditions {
  // Fraction of PHY rate actually achievable as goodput (MAC overhead plus
  // contention). Congested urban 2.4 GHz sits far below clean 5 GHz.
  double efficiency = 0.25;
  SimDuration base_latency = Millis(8);
};

struct EffectiveLink {
  WifiBand band = WifiBand::k2_4GHz;
  uint64_t goodput_bps = 0;
  SimDuration latency = 0;
};

class WifiNetwork {
 public:
  WifiNetwork();

  void SetBandConditions(WifiBand band, BandConditions conditions);
  const BandConditions& conditions(WifiBand band) const;

  // Best link between two radios: picks the best band both support; the
  // goodput is limited by the slower endpoint.
  EffectiveLink LinkBetween(const RadioProfile& a, const RadioProfile& b) const;

  // Time for `bytes` over `link` including per-transfer handshake latency.
  SimDuration TransferTime(uint64_t bytes, const EffectiveLink& link) const;

  // Advances `clock` by TransferTime and accounts the traffic.
  void Transfer(SimClock& clock, uint64_t bytes, const EffectiveLink& link);

  // Advances `clock` through TransferTime(bytes) in slices no longer than
  // `max_slice`, invoking `on_tick` at every slice boundary so devices can
  // run their periodic work (task idlers, due alarms) while a long transfer
  // is in flight. Returns false — with the remaining time not advanced and
  // no traffic accounted — if the network goes down mid-transfer.
  bool TransferWithTicks(SimClock& clock, uint64_t bytes,
                         const EffectiveLink& link, SimDuration max_slice,
                         const std::function<void()>& on_tick);

  // Accounts traffic without advancing any clock; pipelined migrations pace
  // the clock themselves from the stage schedule.
  void AccountTraffic(uint64_t bytes) {
    total_bytes_ += bytes;
    FLUX_TRACE_COUNTER_ADD(trace_bytes_, bytes);
    FLUX_TRACE_COUNTER_ADD(trace_transfers_, 1);
  }

  uint64_t total_bytes_carried() const { return total_bytes_; }

  // Mirrors traffic accounting into net.* trace counters and the
  // net.tick_us slice-duration histogram (null detaches).
  void set_tracer(Tracer* tracer);

  // Flight-recorder events: net.transfer on each completed transfer,
  // net.outage the moment a scheduled outage takes the network down.
  // Migrations point this at the *home* device's recorder for their
  // duration (the network itself is shared and has no device).
  void set_flight_recorder(FlightRecorder* recorder) {
    flight_recorder_ = recorder;
  }

  // Fault injection: while the network is down, migrations cannot transfer
  // (devices would fall back to ad-hoc networking in a full deployment, §1).
  void set_up(bool up) { up_ = up; }
  bool up() const { return up_; }

  // Fault injection: take the network down at a future instant. Transfers
  // in progress observe the outage at their next slice boundary (UpAt).
  void ScheduleOutageAt(SimTime t) { outage_at_ = t; has_outage_ = true; }
  // Applies a due outage, then reports whether the network is up at `now`.
  bool UpAt(SimTime now);

 private:
  BandConditions band_2_4_;
  BandConditions band_5_;
  uint64_t total_bytes_ = 0;
  bool up_ = true;
  bool has_outage_ = false;
  SimTime outage_at_ = 0;
  TraceCounter* trace_bytes_ = nullptr;
  TraceCounter* trace_transfers_ = nullptr;
  TraceCounter* trace_ticks_ = nullptr;
  TraceHistogram* hist_tick_ = nullptr;
  FlightRecorder* flight_recorder_ = nullptr;
};

// Device-observed connectivity state (what ConnectivityManagerService
// reports to apps; Flux signals a loss + reconnect after migration, §3.1).
struct ConnectivityState {
  bool connected = true;
  std::string network_name = "campus-wifi";
};

}  // namespace flux

#endif  // FLUX_SRC_NET_NETWORK_H_
