// Radio / network model.
//
// The paper's evaluation ran on a congested campus 802.11n WiFi network;
// transfer time dominated migration cost (Figure 13), and the Nexus 7
// (2012), limited to the crowded 2.4 GHz band, saw the slowest transfers.
// The model captures exactly those effects: each device has a radio profile
// (supported bands, peak PHY rate), a shared WiFi network applies a
// congestion-derived efficiency factor per band, and a transfer between two
// devices is paced by the weaker endpoint.
#ifndef FLUX_SRC_NET_NETWORK_H_
#define FLUX_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/sim_clock.h"
#include "src/net/frame.h"
#include "src/flux/flight_recorder.h"
#include "src/flux/trace.h"

namespace flux {

enum class WifiBand : uint8_t {
  k2_4GHz = 0,
  k5GHz,
};

enum class WifiStandard : uint8_t {
  k80211n = 0,
  k80211ac,
};

struct RadioProfile {
  WifiStandard standard = WifiStandard::k80211n;
  bool supports_5ghz = true;
  // Peak achievable PHY rate in bits/sec on the best supported band.
  uint64_t peak_phy_bps = 150'000'000;
};

// Conditions on the shared WiFi network (per band).
struct BandConditions {
  // Fraction of PHY rate actually achievable as goodput (MAC overhead plus
  // contention). Congested urban 2.4 GHz sits far below clean 5 GHz.
  double efficiency = 0.25;
  SimDuration base_latency = Millis(8);
};

struct EffectiveLink {
  WifiBand band = WifiBand::k2_4GHz;
  uint64_t goodput_bps = 0;
  SimDuration latency = 0;
};

// ----- hostile-network profiles (DESIGN.md §13) -----
//
// A NetProfile parameterizes everything a flaky last-hop link does to a
// migration: independent and bursty frame loss (a two-state Gilbert-
// Elliott process), a fraction of losses that arrive corrupted (caught by
// the frame CRC instead of vanishing), log-normal per-chunk jitter, rate
// dips (the AP momentarily dropping to a fraction of its goodput), and
// recurring outage windows the link recovers from. The default-constructed
// profile is `clean`: every knob off, and every code path that consumes a
// clean profile is byte-identical to the pre-profile model — the figure
// benches pin that.
struct NetProfile {
  std::string_view name = "clean";
  // Independent per-frame loss probability, always on.
  double loss_rate = 0.0;
  // Gilbert-Elliott burst layer: per-frame probability of entering a burst,
  // of leaving it, and the extra loss probability while inside one.
  double burst_enter = 0.0;
  double burst_exit = 1.0;
  double burst_loss = 0.0;
  // Fraction of lost frames that arrive corrupted (CRC32C catches them and
  // they surface as net.frame.crc_error events) rather than vanishing.
  double corrupt_fraction = 0.0;
  // Per-chunk extra latency: log-normal with this mean; sigma 0 pins the
  // draw to the mean.
  SimDuration jitter_mean = 0;
  double jitter_sigma = 0.0;
  // Rate dips: with probability `rate_dip_duty` a chunk transfers at
  // `rate_dip_factor` of the link goodput.
  double rate_dip_factor = 1.0;
  double rate_dip_duty = 0.0;
  // Recurring outages: the link goes down for `outage_duration` once per
  // `outage_every` (phase seeded per network), and comes back up — unlike
  // ScheduleOutageAt, which is permanent until set_up(true).
  SimDuration outage_every = 0;
  SimDuration outage_duration = 0;

  bool IsClean() const {
    return loss_rate == 0.0 && burst_enter == 0.0 && jitter_mean == 0 &&
           rate_dip_duty == 0.0 && outage_every == 0;
  }
  // Steady-state loss probability: the independent rate plus the burst
  // layer's stationary share.
  double MeanLossRate() const;
  // Expected goodput multiplier from the dip schedule.
  double MeanRateFactor() const;

  // Named presets: clean, campus, home, lte, hostile.
  static Result<NetProfile> Named(std::string_view name);
  static const std::vector<std::string_view>& PresetNames();
};

// Per-link stochastic processes of a profile, seeded so runs reproduce
// bit-for-bit. One shaper per migration (or per fabric link): the draw
// sequence is part of the deterministic simulation contract.
class LinkShaper {
 public:
  LinkShaper(const NetProfile& profile, uint64_t seed)
      : profile_(profile), rng_(seed) {}

  const NetProfile& profile() const { return profile_; }

  // Advances the Gilbert-Elliott chain one frame and draws its fate.
  bool NextFrameLost();
  // For a frame that was lost: did it arrive corrupted (CRC error)?
  bool NextLossIsCorrupt() { return rng_.NextBool(profile_.corrupt_fraction); }
  // Per-chunk goodput multiplier in (0, 1].
  double NextRateFactor();
  // Per-chunk extra latency.
  SimDuration NextJitter();

 private:
  NetProfile profile_;
  Rng rng_;
  bool in_burst_ = false;
};

// One chunk pushed through the frame codec under a shaper's loss process:
// encode -> lose/corrupt -> FEC-reconstruct -> retransmit until delivered,
// with the reassembled bytes checked against the input (a codec bug fails
// loudly instead of corrupting the restore). Every byte count includes
// frame headers.
struct ChunkTransmission {
  uint64_t wire_bytes = 0;        // everything that hit the air
  uint64_t lost_bytes = 0;        // transmissions that never arrived
  uint64_t retransmit_bytes = 0;  // re-sends of previously sent frames
  uint64_t frames_sent = 0;
  uint64_t data_frames = 0;
  uint64_t parity_frames = 0;
  uint64_t frames_lost = 0;
  uint64_t crc_errors = 0;        // losses that arrived corrupt
  uint64_t frames_recovered = 0;  // rebuilt from parity, no retransmit
  uint64_t frames_retransmitted = 0;
  uint32_t next_seq = 0;          // first data seq after this chunk
  uint32_t next_group = 0;        // first FEC group after this chunk
};

// Runs the real codec over `chunk` under `shaper`'s loss process. Corrupt
// arrivals are counted (and surfaced as net.frame.crc_error events on
// `recorder`) and retransmitted like vanished frames. kUnavailable if a
// frame stays undeliverable after many retransmit rounds (a loss storm).
Result<ChunkTransmission> TransmitFramedChunk(ByteSpan chunk,
                                              LinkShaper& shaper,
                                              const FrameStreamOptions& options,
                                              uint32_t base_seq,
                                              uint32_t base_group,
                                              FlightRecorder* recorder);

class WifiNetwork {
 public:
  WifiNetwork();

  void SetBandConditions(WifiBand band, BandConditions conditions);
  const BandConditions& conditions(WifiBand band) const;

  // Best link between two radios: picks the best band both support; the
  // goodput is limited by the slower endpoint.
  EffectiveLink LinkBetween(const RadioProfile& a, const RadioProfile& b) const;

  // Time for `bytes` over `link` including per-transfer handshake latency.
  SimDuration TransferTime(uint64_t bytes, const EffectiveLink& link) const;

  // Advances `clock` by TransferTime and accounts the traffic.
  void Transfer(SimClock& clock, uint64_t bytes, const EffectiveLink& link);

  // Advances `clock` through TransferTime(bytes) in slices no longer than
  // `max_slice`, invoking `on_tick` at every slice boundary so devices can
  // run their periodic work (task idlers, due alarms) while a long transfer
  // is in flight. Returns false — with the remaining time not advanced and
  // no traffic accounted — if the network goes down mid-transfer.
  bool TransferWithTicks(SimClock& clock, uint64_t bytes,
                         const EffectiveLink& link, SimDuration max_slice,
                         const std::function<void()>& on_tick);

  // Accounts traffic without advancing any clock; pipelined migrations pace
  // the clock themselves from the stage schedule.
  void AccountTraffic(uint64_t bytes) {
    total_bytes_ += bytes;
    FLUX_TRACE_COUNTER_ADD(trace_bytes_, bytes);
    FLUX_TRACE_COUNTER_ADD(trace_transfers_, 1);
  }

  uint64_t total_bytes_carried() const { return total_bytes_; }

  // Mirrors traffic accounting into net.* trace counters and the
  // net.tick_us slice-duration histogram (null detaches).
  void set_tracer(Tracer* tracer);

  // Flight-recorder events: net.transfer on each completed transfer,
  // net.outage the moment a scheduled outage takes the network down.
  // Migrations point this at the *home* device's recorder for their
  // duration (the network itself is shared and has no device).
  void set_flight_recorder(FlightRecorder* recorder) {
    flight_recorder_ = recorder;
  }

  // Fault injection: while the network is down, migrations cannot transfer
  // (devices would fall back to ad-hoc networking in a full deployment, §1).
  void set_up(bool up) { up_ = up; }
  bool up() const { return up_; }

  // Fault injection: take the network down at a future instant. Transfers
  // in progress observe the outage at their next slice boundary (UpAt).
  void ScheduleOutageAt(SimTime t) { outage_at_ = t; has_outage_ = true; }
  // Recoverable fault injection: down during [at, at + duration), up again
  // after — the outage shape resumable transfers are built for.
  void ScheduleOutageWindow(SimTime at, SimDuration duration);
  // Applies a due outage, then reports whether the network is up at `now`.
  bool UpAt(SimTime now);
  // Earliest instant >= now at which the network is (or comes back) up.
  // False when it never recovers (a permanent ScheduleOutageAt outage).
  bool NextUpAt(SimTime now, SimTime* when) const;

  // Installs a hostile-network profile; `seed` phases the recurring outage
  // schedule. A clean profile (the default) leaves every path untouched.
  void ApplyProfile(const NetProfile& profile, uint64_t seed);
  const NetProfile& profile() const { return profile_; }

 private:
  // Non-recoverable outage state due at `now`, applied lazily.
  bool InOutageWindow(SimTime now, SimTime* until, uint64_t* id) const;

  BandConditions band_2_4_;
  BandConditions band_5_;
  uint64_t total_bytes_ = 0;
  bool up_ = true;
  bool has_outage_ = false;
  SimTime outage_at_ = 0;
  struct OutageWindow {
    SimTime at = 0;
    SimDuration duration = 0;
  };
  std::vector<OutageWindow> windows_;
  NetProfile profile_;
  SimTime profile_outage_phase_ = 0;
  // Last outage window reported to the flight recorder (one event per
  // window, not per UpAt probe).
  uint64_t last_outage_reported_ = 0;
  TraceCounter* trace_bytes_ = nullptr;
  TraceCounter* trace_transfers_ = nullptr;
  TraceCounter* trace_ticks_ = nullptr;
  TraceHistogram* hist_tick_ = nullptr;
  FlightRecorder* flight_recorder_ = nullptr;
};

// Device-observed connectivity state (what ConnectivityManagerService
// reports to apps; Flux signals a loss + reconnect after migration, §3.1).
struct ConnectivityState {
  bool connected = true;
  std::string network_name = "campus-wifi";
};

}  // namespace flux

#endif  // FLUX_SRC_NET_NETWORK_H_
