#include "src/device/device.h"

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/base/synthetic_content.h"
#include "src/framework/intent.h"

namespace flux {

Device::Device(std::string name, DeviceProfile profile, SimClock* clock,
               WifiNetwork* wifi)
    : name_(std::move(name)),
      profile_(std::move(profile)),
      clock_(clock),
      wifi_(wifi),
      flight_recorder_(clock, FlightRecorder::kDefaultCapacity,
                       /*capture_logs=*/true),
      kernel_(profile_.kernel_version, /*pmem_pool=*/profile_.ram_bytes / 4),
      binder_(&kernel_, clock),
      egl_(&kernel_, profile_.gpu) {
  binder_.set_flight_recorder(&flight_recorder_);
  context_.device_name = name_;
  context_.android_version = profile_.android_version;
  context_.api_level = profile_.api_level;
  context_.kernel = &kernel_;
  context_.binder = &binder_;
  context_.filesystem = &filesystem_;
  context_.egl = &egl_;
  context_.wifi = wifi_;
  context_.clock = clock_;
  context_.record_rules = &record_rules_;
  context_.radio = profile_.radio;
  context_.display = profile_.display;
  context_.cpu_factor = profile_.cpu_factor;
  context_.has_gps = profile_.has_gps;
  context_.has_gyroscope = profile_.has_gyroscope;
  context_.has_camera = profile_.has_camera;
  context_.has_vibrator = profile_.has_vibrator;
  context_.max_music_volume = profile_.max_music_volume;
}

Status Device::Boot(const BootOptions& options) {
  if (booted_) {
    return FailedPrecondition("device already booted: " + name_);
  }
  // servicemanager is the first userspace process: it becomes the Binder
  // context manager.
  SimProcess& sm_process = kernel_.CreateProcess("servicemanager", 0);
  service_manager_ = ServiceManager::Install(binder_, sm_process.pid());
  context_.service_manager = service_manager_.get();

  SimProcess& server_process =
      kernel_.CreateProcess("system_server", kSystemUid);
  system_server_ = std::make_unique<SystemServer>(context_, server_process.pid());
  SystemServer& server = *system_server_;

  auto install = [&](auto service_ptr, auto*& slot) -> Status {
    slot = service_ptr.get();
    return server.Install(std::move(service_ptr));
  };

  FLUX_RETURN_IF_ERROR(install(
      std::make_shared<WindowManagerService>(context_), window_manager_));
  FLUX_RETURN_IF_ERROR(install(
      std::make_shared<ActivityManagerService>(context_), activity_manager_));
  activity_manager_->SetWindowManager(window_manager_);
  FLUX_RETURN_IF_ERROR(install(
      std::make_shared<PackageManagerService>(context_), package_manager_));
  FLUX_RETURN_IF_ERROR(
      install(std::make_shared<NotificationManagerService>(context_),
              notification_service_));
  FLUX_RETURN_IF_ERROR(install(std::make_shared<AlarmManagerService>(context_),
                               alarm_service_));
  alarm_service_->SetIntentSink([this](const Intent& intent) {
    activity_manager_->BroadcastIntent(intent);
  });
  FLUX_RETURN_IF_ERROR(
      install(std::make_shared<SensorService>(context_), sensor_service_));
  FLUX_RETURN_IF_ERROR(RegisterNativeSensorRules(server));
  FLUX_RETURN_IF_ERROR(
      install(std::make_shared<AudioService>(context_), audio_service_));
  FLUX_RETURN_IF_ERROR(
      install(std::make_shared<WifiService>(context_), wifi_service_));
  FLUX_RETURN_IF_ERROR(
      install(std::make_shared<ConnectivityManagerService>(context_),
              connectivity_service_));
  FLUX_RETURN_IF_ERROR(install(
      std::make_shared<LocationManagerService>(context_), location_service_));
  FLUX_RETURN_IF_ERROR(
      install(std::make_shared<PowerManagerService>(context_), power_service_));
  FLUX_RETURN_IF_ERROR(install(std::make_shared<ClipboardService>(context_),
                               clipboard_service_));
  FLUX_RETURN_IF_ERROR(install(std::make_shared<VibratorService>(context_),
                               vibrator_service_));
  FLUX_RETURN_IF_ERROR(install(
      std::make_shared<ContentProviderService>(context_), content_service_));
  FLUX_RETURN_IF_ERROR(
      server.Install(std::make_shared<InputMethodManagerService>(context_)));
  FLUX_RETURN_IF_ERROR(
      server.Install(std::make_shared<InputManagerService>(context_)));
  FLUX_RETURN_IF_ERROR(
      server.Install(std::make_shared<CameraManagerService>(context_)));
  FLUX_RETURN_IF_ERROR(
      server.Install(std::make_shared<CountryDetectorService>(context_)));
  FLUX_RETURN_IF_ERROR(
      server.Install(std::make_shared<KeyguardService>(context_)));
  FLUX_RETURN_IF_ERROR(server.Install(std::make_shared<NsdService>(context_)));
  FLUX_RETURN_IF_ERROR(
      server.Install(std::make_shared<TextServicesManagerService>(context_)));
  FLUX_RETURN_IF_ERROR(
      server.Install(std::make_shared<UiModeManagerService>(context_)));
  FLUX_RETURN_IF_ERROR(
      server.Install(std::make_shared<BluetoothService>(context_)));
  FLUX_RETURN_IF_ERROR(
      server.Install(std::make_shared<SerialService>(context_)));
  FLUX_RETURN_IF_ERROR(server.Install(std::make_shared<UsbService>(context_)));

  FLUX_RETURN_IF_ERROR(PopulateSystemPartition(options.framework_scale));
  FLUX_RETURN_IF_ERROR(filesystem_.Mkdirs("/data/app"));
  FLUX_RETURN_IF_ERROR(filesystem_.Mkdirs("/data/data"));
  FLUX_RETURN_IF_ERROR(filesystem_.Mkdirs("/sdcard"));

  booted_ = true;
  FLUX_LOG(kInfo, "device") << name_ << " (" << profile_.model
                            << ") booted, kernel " << profile_.kernel_version;
  return OkStatus();
}

Status Device::PopulateSystemPartition(double scale) {
  // The framework/library set pairing must sync (§4): a shared portion that
  // is byte-identical across devices on the same Android build (seeded by
  // build + path only) and a device-specific portion (vendor blobs, device
  // trees; seeded also by the SoC). At scale 1.0 this yields ~215 MB of
  // constant data of which ~92 MB is shareable, matching the paper's
  // measurement.
  struct Spec {
    const char* dir;
    int files;
    uint64_t bytes_each;
    bool device_specific;
    double compressibility;
  };
  // Composition calibrated to the paper's pairing measurement (§4): ~215 MB
  // of constant data, of which ~43% is identical across devices on the same
  // build (hard-linkable) and the remaining ~123 MB compresses ~2.2x.
  const Spec specs[] = {
      {"/system/framework", 37, 2 * 1024 * 1024, false, 0.62},
      {"/system/lib", 90, 128 * 1024, false, 0.60},
      {"/system/app", 45, 1 * 1024 * 1024, true, 0.63},
      {"/system/vendor/lib", 50, 1 * 1024 * 1024, true, 0.63},
      {"/system/vendor/firmware", 7, 4 * 1024 * 1024, true, 0.63},
      {"/system/bin", 50, 96 * 1024, false, 0.60},
      {"/system/etc", 40, 32 * 1024, true, 0.75},
  };
  // Named framework artifacts that app processes map directly.
  FLUX_RETURN_IF_ERROR(filesystem_.WriteFile(
      "/system/framework/core.jar",
      GenerateNamedContent(profile_.android_version + ":/system/framework/core.jar",
                           std::max<uint64_t>(4096, static_cast<uint64_t>(
                                                        2.0 * 1024 * 1024 * scale)),
                           0.6)));
  for (const auto& spec : specs) {
    for (int i = 0; i < spec.files; ++i) {
      const uint64_t size =
          std::max<uint64_t>(1024, static_cast<uint64_t>(
                                       static_cast<double>(spec.bytes_each) *
                                       scale));
      const std::string path = StrFormat("%s/file_%03d.bin", spec.dir, i);
      // Device-specific content is a function of the *device model* (vendor
      // blobs and device trees differ even between devices sharing a SoC).
      const std::string seed_name =
          spec.device_specific
              ? StrFormat("%s:%s:%s:%s", profile_.android_version.c_str(),
                          profile_.model.c_str(), profile_.soc.c_str(),
                          path.c_str())
              : StrFormat("%s:%s", profile_.android_version.c_str(),
                          path.c_str());
      FLUX_RETURN_IF_ERROR(filesystem_.WriteFile(
          path,
          GenerateNamedContent(seed_name, size, spec.compressibility)));
    }
  }
  return OkStatus();
}

SimProcess& Device::CreateAppProcess(const std::string& package, Uid uid) {
  SimProcess& process = kernel_.CreateProcess(package, uid);
  // Standard app mappings: main stack and the zygote-inherited runtime.
  MemorySegment stack;
  stack.name = "[stack]";
  stack.kind = SegmentKind::kAnonPrivate;
  stack.content = GenerateNamedContent(package + ":stack", 64 * 1024, 0.8);
  process.address_space().Map(std::move(stack));

  MemorySegment runtime;
  runtime.name = "/system/framework/core.jar";
  runtime.kind = SegmentKind::kFileBackedRo;
  runtime.mapped_size = 8 * 1024 * 1024;
  runtime.backing_path = "/system/framework/core.jar";
  process.address_space().Map(std::move(runtime));

  // /dev/binder and the logger are open in every app.
  process.InstallFd(std::make_shared<BinderFd>());
  process.InstallFd(std::make_shared<LoggerFd>("main"));
  return process;
}

Status Device::KillAppProcess(Pid pid) {
  SimProcess* process = kernel_.FindProcess(pid);
  if (process == nullptr) {
    return NotFound(StrFormat("no process %d on %s", pid, name_.c_str()));
  }
  activity_manager_->OnProcessExit(pid);
  window_manager_->OnProcessExit(pid);
  egl_.OnProcessExit(pid);
  binder_.OnProcessExit(pid);
  return kernel_.KillProcess(pid);
}

void Device::Tick() {
  activity_manager_->RunTaskIdler();
  alarm_service_->FireDue(clock_->now());
}

void Device::SetConnectivity(bool connected, const std::string& network_name) {
  context_.connectivity.connected = connected;
  context_.connectivity.network_name = network_name;
  Intent intent;
  intent.action = "android.net.conn.CONNECTIVITY_CHANGE";
  intent.extras["connected"] = connected ? "true" : "false";
  intent.extras["network"] = network_name;
  activity_manager_->BroadcastIntent(intent);
}

}  // namespace flux
