#include "src/device/world.h"

#include <algorithm>

#include "src/base/logging.h"

namespace flux {

namespace {

// Living worlds' clocks, in construction order. The log clock always points
// at the top; destroying any world (LIFO or not) re-points it at the newest
// survivor instead of leaving it on a dead clock or dropping it to null
// while an outer world is still alive.
std::vector<const SimClock*>& LogClockStack() {
  static std::vector<const SimClock*> stack;
  return stack;
}

}  // namespace

World::World() : World(WorldOptions{}) {}

World::World(const WorldOptions& options)
    : scheduler_(&clock_, options.scheduler_shards) {
  scheduler_.SetParallelDriver(
      {options.scheduler_pool, options.scheduler_lookahead});
  LogClockStack().push_back(&clock_);
  SetLogClock(&clock_);
}

World::~World() {
  auto& stack = LogClockStack();
  const auto it = std::find(stack.rbegin(), stack.rend(), &clock_);
  if (it != stack.rend()) {
    stack.erase(std::next(it).base());
  }
  SetLogClock(stack.empty() ? nullptr : stack.back());
}

Result<Device*> World::AddDevice(const std::string& name,
                                 const DeviceProfile& profile,
                                 const BootOptions& options) {
  if (index_.count(name) > 0) {
    return AlreadyExists("device name in use: " + name);
  }
  auto device = std::make_unique<Device>(name, profile, &clock_, &wifi_);
  FLUX_RETURN_IF_ERROR(device->Boot(options));
  Device* raw = device.get();
  index_[name] = devices_.size();
  devices_.push_back(std::move(device));
  return raw;
}

Device* World::FindDevice(std::string_view name) {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : devices_[it->second].get();
}

EffectiveLink World::LinkBetween(const Device& a, const Device& b) const {
  return wifi_.LinkBetween(a.profile().radio, b.profile().radio);
}

void World::AdvanceTime(SimDuration d) {
  const SimTime target =
      clock_.now() + static_cast<SimTime>(d > 0 ? d : 0);
  // Legacy tick semantics, reproduced exactly: the clock reaches the target
  // and every device ticks once there, in name order (the order the old
  // name-keyed map iterated). Going through the scheduler lets wake-ups
  // registered via ScheduleAt fire at their exact due times in between.
  for (const auto& [name, idx] : index_) {
    (void)name;
    Device* device = devices_[idx].get();
    scheduler_.ScheduleAt(
        target, [device] { device->Tick(); },
        static_cast<uint32_t>(idx) %
            static_cast<uint32_t>(scheduler_.shards()));
  }
  scheduler_.RunUntil(target);
}

}  // namespace flux
