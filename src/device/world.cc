#include "src/device/world.h"

#include "src/base/logging.h"

namespace flux {

World::World() { SetLogClock(&clock_); }

World::~World() {
  if (GetLogClock() == &clock_) {
    SetLogClock(nullptr);
  }
}

Result<Device*> World::AddDevice(const std::string& name,
                                 const DeviceProfile& profile,
                                 const BootOptions& options) {
  if (devices_.count(name) > 0) {
    return AlreadyExists("device name in use: " + name);
  }
  auto device = std::make_unique<Device>(name, profile, &clock_, &wifi_);
  FLUX_RETURN_IF_ERROR(device->Boot(options));
  Device* raw = device.get();
  devices_[name] = std::move(device);
  return raw;
}

Device* World::FindDevice(const std::string& name) {
  auto it = devices_.find(name);
  return it == devices_.end() ? nullptr : it->second.get();
}

EffectiveLink World::LinkBetween(const Device& a, const Device& b) const {
  return wifi_.LinkBetween(a.profile().radio, b.profile().radio);
}

void World::AdvanceTime(SimDuration d) {
  clock_.Advance(d);
  for (auto& [name, device] : devices_) {
    (void)name;
    device->Tick();
  }
}

}  // namespace flux
