// A complete simulated Android device.
//
// Composes the substrates — kernel, filesystem, Binder driver +
// ServiceManager, GL runtime, radio — and boots the framework: a
// system_server hosting every Table 2 service, a PackageManager, a
// WindowManager wired to the ActivityManager, and the record rule set
// compiled from the decorated AIDL sources.
#ifndef FLUX_SRC_DEVICE_DEVICE_H_
#define FLUX_SRC_DEVICE_DEVICE_H_

#include <memory>
#include <string>

#include "src/aidl/record_rules.h"
#include "src/binder/binder_driver.h"
#include "src/binder/service_manager.h"
#include "src/device/device_profile.h"
#include "src/framework/activity_manager.h"
#include "src/framework/alarm_service.h"
#include "src/framework/audio_service.h"
#include "src/framework/content_provider.h"
#include "src/framework/hardware_services.h"
#include "src/framework/misc_services.h"
#include "src/framework/notification_service.h"
#include "src/framework/package_manager.h"
#include "src/framework/sensor_service.h"
#include "src/framework/system_service.h"
#include "src/framework/window_manager.h"
#include "src/flux/flight_recorder.h"
#include "src/fs/sim_filesystem.h"
#include "src/gpu/egl_runtime.h"
#include "src/kernel/sim_kernel.h"

namespace flux {

struct BootOptions {
  // Scales the synthetic /system framework content (1.0 ~ the paper's
  // 215 MB pairing constant). Tests use small scales to stay fast.
  double framework_scale = 0.05;
};

class Device {
 public:
  // `clock` and `wifi` are shared across the World's devices.
  Device(std::string name, DeviceProfile profile, SimClock* clock,
         WifiNetwork* wifi);

  // Boots the framework: processes, services, /system content.
  Status Boot(const BootOptions& options = {});
  bool booted() const { return booted_; }

  const std::string& name() const { return name_; }
  const DeviceProfile& profile() const { return profile_; }
  SystemContext& context() { return context_; }
  const SystemContext& context() const { return context_; }

  SimKernel& kernel() { return kernel_; }
  SimFilesystem& filesystem() { return filesystem_; }
  BinderDriver& binder() { return binder_; }
  ServiceManager& service_manager() { return *service_manager_; }
  EglRuntime& egl() { return egl_; }
  RecordRuleSet& record_rules() { return record_rules_; }
  SimClock& clock() { return *clock_; }
  WifiNetwork& wifi() { return *wifi_; }
  // Always-on flight recorder: the last kDefaultCapacity structured events
  // from every subsystem on this device, mirrored kError+ log lines
  // included. Snapshotted into forensic reports on migration failure.
  FlightRecorder& flight_recorder() { return flight_recorder_; }
  const FlightRecorder& flight_recorder() const { return flight_recorder_; }

  SystemServer& system_server() { return *system_server_; }
  ActivityManagerService& activity_manager() { return *activity_manager_; }
  WindowManagerService& window_manager() { return *window_manager_; }
  PackageManagerService& package_manager() { return *package_manager_; }
  NotificationManagerService& notification_service() {
    return *notification_service_;
  }
  AlarmManagerService& alarm_service() { return *alarm_service_; }
  SensorService& sensor_service() { return *sensor_service_; }
  AudioService& audio_service() { return *audio_service_; }
  WifiService& wifi_service() { return *wifi_service_; }
  ConnectivityManagerService& connectivity_service() {
    return *connectivity_service_;
  }
  LocationManagerService& location_service() { return *location_service_; }
  PowerManagerService& power_service() { return *power_service_; }
  ClipboardService& clipboard_service() { return *clipboard_service_; }
  VibratorService& vibrator_service() { return *vibrator_service_; }
  ContentProviderService& content_service() { return *content_service_; }

  // Creates an app process with standard mappings (stack, dalvik runtime).
  SimProcess& CreateAppProcess(const std::string& package, Uid uid);

  // Tears a process down across all subsystems (binder death notices, GL
  // contexts, windows, activity records, pmem).
  Status KillAppProcess(Pid pid);

  // Periodic housekeeping: task idler + due alarms. Call after advancing
  // the clock.
  void Tick();

  // Broadcasts a connectivity change to interested apps (§3.1 migration-in).
  void SetConnectivity(bool connected, const std::string& network_name);

  // The synthetic framework content root on /system.
  static constexpr char kFrameworkRoot[] = "/system";

 private:
  Status PopulateSystemPartition(double scale);

  std::string name_;
  DeviceProfile profile_;
  SimClock* clock_;
  WifiNetwork* wifi_;

  FlightRecorder flight_recorder_;
  SimKernel kernel_;
  SimFilesystem filesystem_;
  BinderDriver binder_;
  EglRuntime egl_;
  RecordRuleSet record_rules_;
  SystemContext context_;

  std::shared_ptr<ServiceManager> service_manager_;
  std::unique_ptr<SystemServer> system_server_;
  bool booted_ = false;

  // Borrowed from system_server_ (kept alive there).
  ActivityManagerService* activity_manager_ = nullptr;
  WindowManagerService* window_manager_ = nullptr;
  PackageManagerService* package_manager_ = nullptr;
  NotificationManagerService* notification_service_ = nullptr;
  AlarmManagerService* alarm_service_ = nullptr;
  SensorService* sensor_service_ = nullptr;
  AudioService* audio_service_ = nullptr;
  WifiService* wifi_service_ = nullptr;
  ConnectivityManagerService* connectivity_service_ = nullptr;
  LocationManagerService* location_service_ = nullptr;
  PowerManagerService* power_service_ = nullptr;
  ClipboardService* clipboard_service_ = nullptr;
  VibratorService* vibrator_service_ = nullptr;
  ContentProviderService* content_service_ = nullptr;
};

}  // namespace flux

#endif  // FLUX_SRC_DEVICE_DEVICE_H_
