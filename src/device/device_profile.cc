#include "src/device/device_profile.h"

namespace flux {

DeviceProfile Nexus4Profile() {
  DeviceProfile profile;
  profile.model = "Nexus 4";
  profile.soc = "Snapdragon S4 Pro APQ8064";
  profile.kernel_version = "3.4";
  profile.ram_bytes = 2ull * 1024 * 1024 * 1024;
  profile.display = DisplayProfile{768, 1280, 320};
  profile.radio = RadioProfile{WifiStandard::k80211n, /*supports_5ghz=*/true,
                               150'000'000};
  profile.gpu = VendorGlProfile{"adreno320", 14 * 1024 * 1024, 1.0, 1.0};
  profile.cpu_factor = 1.0;
  profile.perf_cpu = 1.0;
  profile.perf_mem = 1.0;
  profile.perf_io = 1.0;
  profile.chunk_cache_budget_bytes = 64ull * 1024 * 1024;
  profile.max_music_volume = 15;
  return profile;
}

DeviceProfile Nexus7_2012Profile() {
  DeviceProfile profile;
  profile.model = "Nexus 7";
  profile.soc = "Tegra 3 T30L";
  profile.kernel_version = "3.1";
  profile.ram_bytes = 1ull * 1024 * 1024 * 1024;
  profile.display = DisplayProfile{1280, 800, 216};
  // 2.4 GHz only: the device is stuck on the congested band (§4).
  profile.radio = RadioProfile{WifiStandard::k80211n, /*supports_5ghz=*/false,
                               72'000'000};
  profile.gpu = VendorGlProfile{"tegra_ulp_geforce", 11 * 1024 * 1024,
                                0.65, 0.55};
  profile.cpu_factor = 0.62;
  profile.perf_cpu = 0.62;
  profile.perf_mem = 0.70;
  profile.perf_io = 0.75;
  // 1 GB of RAM: half the chunk-cache budget of the 2 GB devices.
  profile.chunk_cache_budget_bytes = 32ull * 1024 * 1024;
  profile.max_music_volume = 15;
  return profile;
}

DeviceProfile Nexus7_2013Profile() {
  DeviceProfile profile;
  profile.model = "Nexus 7 (2013)";
  profile.soc = "Snapdragon S4 Pro APQ8064";
  profile.kernel_version = "3.4";
  profile.ram_bytes = 2ull * 1024 * 1024 * 1024;
  profile.display = DisplayProfile{1920, 1200, 323};
  profile.radio = RadioProfile{WifiStandard::k80211n, /*supports_5ghz=*/true,
                               150'000'000};
  profile.gpu = VendorGlProfile{"adreno320", 14 * 1024 * 1024, 1.0, 1.0};
  profile.cpu_factor = 1.0;
  profile.perf_cpu = 1.0;
  profile.perf_mem = 0.98;
  profile.perf_io = 0.95;
  profile.chunk_cache_budget_bytes = 64ull * 1024 * 1024;
  profile.max_music_volume = 15;
  return profile;
}

}  // namespace flux
