// The World: a set of devices on one shared WiFi network and one virtual
// timeline. Benchmarks build a world with the paper's four devices, pair
// them, and run migrations between them.
#ifndef FLUX_SRC_DEVICE_WORLD_H_
#define FLUX_SRC_DEVICE_WORLD_H_

#include <map>
#include <memory>
#include <string>

#include "src/device/device.h"

namespace flux {

class World {
 public:
  // Construction points the logging layer's timestamp clock at this world's
  // timeline, so FLUX_LOG lines carry simulated time (OBSERVABILITY.md);
  // destruction unhooks it again. With multiple worlds alive (probe worlds
  // in tests), the most recently built one stamps the logs.
  World();
  ~World();

  SimClock& clock() { return clock_; }
  WifiNetwork& wifi() { return wifi_; }

  // Creates and boots a device.
  Result<Device*> AddDevice(const std::string& name,
                            const DeviceProfile& profile,
                            const BootOptions& options = {});
  Device* FindDevice(const std::string& name);
  size_t device_count() const { return devices_.size(); }

  // Link between two devices given the current band conditions.
  EffectiveLink LinkBetween(const Device& a, const Device& b) const;

  // Advances time and ticks every device (task idlers, alarms).
  void AdvanceTime(SimDuration d);

 private:
  SimClock clock_;
  WifiNetwork wifi_;
  std::map<std::string, std::unique_ptr<Device>> devices_;
};

}  // namespace flux

#endif  // FLUX_SRC_DEVICE_WORLD_H_
