// The World: a set of devices on one shared WiFi network and one virtual
// timeline, advanced by a sharded discrete-event scheduler. Benchmarks build
// a world with the paper's four devices, pair them, and run migrations
// between them; fleet benches drive the scheduler directly so 1k-100k
// devices cost O(active events) per virtual second instead of O(fleet).
#ifndef FLUX_SRC_DEVICE_WORLD_H_
#define FLUX_SRC_DEVICE_WORLD_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/event_queue.h"
#include "src/device/device.h"

namespace flux {

struct WorldOptions {
  // Shard count of the event scheduler. Devices map to shards by their
  // dense index modulo this; 1 (the default) keeps the legacy single-queue
  // behavior. The pop order is shard-count independent (EventScheduler's
  // determinism contract), so this only tunes heap sizes at fleet scale.
  int scheduler_shards = 1;
  // Parallel driver for staged events (DESIGN.md §12), passed through to
  // EventScheduler::SetParallelDriver. Null keeps the driver serial. Note
  // the device tick events AdvanceTime schedules are *barrier* events and
  // always fire serially — Device::Tick reaches shared world state
  // (WifiNetwork, MigrationManager, the log clock) that is not
  // thread-compatible — so figure benches are bit-identical with or
  // without a pool; only workloads that schedule staged events (the fleet
  // coordinator) parallelize. The pool must outlive the world.
  ThreadPool* scheduler_pool = nullptr;
  SimDuration scheduler_lookahead = Millis(20);
};

class World {
 public:
  // Construction points the logging layer's timestamp clock at this world's
  // timeline, so FLUX_LOG lines carry simulated time (OBSERVABILITY.md).
  // Worlds nest with stack discipline: destroying an inner (probe) world
  // restores the next-outer living world's clock — never a dead one, and
  // never null while some world is still alive.
  World();
  explicit World(const WorldOptions& options);
  ~World();

  SimClock& clock() { return clock_; }
  WifiNetwork& wifi() { return wifi_; }
  EventScheduler& scheduler() { return scheduler_; }

  // Creates and boots a device.
  Result<Device*> AddDevice(const std::string& name,
                            const DeviceProfile& profile,
                            const BootOptions& options = {});
  // Heterogeneous lookup: string literals and string_views probe the name
  // index without materializing a std::string.
  Device* FindDevice(std::string_view name);
  // Stable dense index in insertion order — fleet-scale iteration walks
  // this instead of churning string keys. Out-of-range returns null.
  Device* at(size_t index) {
    return index < devices_.size() ? devices_[index].get() : nullptr;
  }
  size_t device_count() const { return devices_.size(); }

  // Link between two devices given the current band conditions.
  EffectiveLink LinkBetween(const Device& a, const Device& b) const;

  // Advances time and ticks every device (task idlers, alarms), exactly as
  // the legacy slice loop did: one tick per device at the target instant,
  // in name order. Implemented as scheduler events so wake-ups registered
  // via ScheduleAt interleave at their exact due times.
  void AdvanceTime(SimDuration d);

  // Event-driven advancement: registers a wake-up (optionally pinned to a
  // device's shard) and pops events up to `target`. Idle devices cost
  // nothing on this path.
  EventId ScheduleAt(SimTime due, EventFn fn, size_t device_index = 0) {
    return scheduler_.ScheduleAt(
        due, std::move(fn),
        static_cast<uint32_t>(device_index) %
            static_cast<uint32_t>(scheduler_.shards()));
  }
  void RunUntil(SimTime target) { scheduler_.RunUntil(target); }

 private:
  SimClock clock_;
  WifiNetwork wifi_;
  EventScheduler scheduler_;
  std::vector<std::unique_ptr<Device>> devices_;
  // name -> dense index; transparent comparator so FindDevice(string_view)
  // never allocates.
  std::map<std::string, size_t, std::less<>> index_;
};

}  // namespace flux

#endif  // FLUX_SRC_DEVICE_WORLD_H_
