// Hardware profiles of the evaluation devices (§4).
//
//   Nexus 4:        Snapdragon S4 Pro APQ8064, Adreno 320, 2 GB RAM,
//                   768x1280 IPS LCD, kernel 3.4, dual-band 802.11n.
//   Nexus 7 (2012): Tegra 3 T30L, ULP GeForce, 1 GB RAM, 1280x800,
//                   kernel 3.1, 2.4 GHz-only 802.11n (the congested band).
//   Nexus 7 (2013): Snapdragon S4 Pro APQ8064, Adreno 320, 2 GB RAM,
//                   1920x1200, kernel 3.4, dual-band 802.11n.
#ifndef FLUX_SRC_DEVICE_DEVICE_PROFILE_H_
#define FLUX_SRC_DEVICE_DEVICE_PROFILE_H_

#include <cstdint>
#include <string>

#include "src/framework/system_context.h"
#include "src/gpu/egl_runtime.h"
#include "src/net/network.h"

namespace flux {

struct DeviceProfile {
  std::string model;           // "Nexus 4"
  std::string soc;             // "Snapdragon S4 Pro APQ8064"
  std::string kernel_version;  // "3.4"
  std::string android_version = "4.4.2";
  int api_level = 19;

  uint64_t ram_bytes = 2ull * 1024 * 1024 * 1024;
  DisplayProfile display;
  RadioProfile radio;
  VendorGlProfile gpu;

  double cpu_factor = 1.0;  // relative to Snapdragon S4 Pro
  bool has_gps = true;
  bool has_gyroscope = true;
  bool has_camera = true;
  bool has_vibrator = true;
  int max_music_volume = 15;

  // CPU / memory / IO throughput relative to the S4 Pro baseline, used by
  // the Figure 16 overhead benchmarks.
  double perf_cpu = 1.0;
  double perf_mem = 1.0;
  double perf_io = 1.0;

  // Byte budget of the content-addressed chunk cache backing warm
  // re-migrations (LRU-evicted past this). Sized to the device's RAM:
  // a slice of the data partition's page cache in a real deployment.
  uint64_t chunk_cache_budget_bytes = 64ull * 1024 * 1024;
};

DeviceProfile Nexus4Profile();
DeviceProfile Nexus7_2012Profile();
DeviceProfile Nexus7_2013Profile();

}  // namespace flux

#endif  // FLUX_SRC_DEVICE_DEVICE_PROFILE_H_
