#include "src/kernel/fd_object.h"

namespace flux {

std::string_view FdKindName(FdKind kind) {
  switch (kind) {
    case FdKind::kRegularFile:
      return "file";
    case FdKind::kPipeRead:
      return "pipe_read";
    case FdKind::kPipeWrite:
      return "pipe_write";
    case FdKind::kUnixSocket:
      return "unix_socket";
    case FdKind::kAshmem:
      return "ashmem";
    case FdKind::kPmem:
      return "pmem";
    case FdKind::kLogger:
      return "logger";
    case FdKind::kAlarmDev:
      return "alarm_dev";
    case FdKind::kWakelockDev:
      return "wakelock_dev";
    case FdKind::kBinder:
      return "binder";
    case FdKind::kEventFd:
      return "eventfd";
  }
  return "unknown";
}

}  // namespace flux
