// Per-process virtual memory model.
//
// CRIA's checkpoint image size is dominated by the process's memory
// segments, so the simulation represents them with real byte content: Dalvik
// heap and anonymous mappings carry synthetic semi-compressible data that
// flows through the LZ codec and the network model. File-backed, read-only
// mappings (the APK, framework libraries) are *not* serialized — they are
// re-mapped from the paired filesystem on restore, exactly why pairing syncs
// those files ahead of time. Vendor-library mappings (GPU) are flagged so
// CRIA can verify they were unloaded (eglUnload) before checkpoint.
#ifndef FLUX_SRC_KERNEL_ADDRESS_SPACE_H_
#define FLUX_SRC_KERNEL_ADDRESS_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"

namespace flux {

enum class SegmentKind : uint8_t {
  kAnonPrivate = 0,   // heap, stacks: content checkpointed
  kFileBackedRo,      // APK / libs: re-mapped by path on restore
  kFileBackedRw,      // data files mapped writable: dirty content checkpointed
  kAshmem,            // named shared memory: checkpointed with its name
  kPmem,              // physically contiguous (GPU/camera): must be freed
  kVendorLibrary,     // device-specific GL library text: must be unloaded
};

std::string_view SegmentKindName(SegmentKind kind);

struct MemorySegment {
  std::string name;        // e.g. "[heap]", "dalvik-main", "/system/lib/libgl.so"
  SegmentKind kind = SegmentKind::kAnonPrivate;
  uint64_t start = 0;      // virtual address
  Bytes content;           // empty for kFileBackedRo / kVendorLibrary
  uint64_t mapped_size = 0;  // full size even when content is not held
  std::string backing_path;  // for file-backed segments
  // Write generation at which this segment was last dirtied (mapping counts
  // as a write). Compared against an epoch from AddressSpace::BeginEpoch:
  // `dirty_gen >= epoch` means "written since that epoch". Pre-copy's
  // snapshot-and-clear is therefore O(1) — no per-segment bit to clear.
  uint64_t dirty_gen = 0;

  uint64_t size() const {
    return content.empty() ? mapped_size : content.size();
  }

  // True if the segment's bytes are part of a checkpoint image.
  bool checkpointed() const {
    switch (kind) {
      case SegmentKind::kAnonPrivate:
      case SegmentKind::kFileBackedRw:
      case SegmentKind::kAshmem:
        return true;
      case SegmentKind::kFileBackedRo:
      case SegmentKind::kPmem:
      case SegmentKind::kVendorLibrary:
        return false;
    }
    return false;
  }
};

class AddressSpace {
 public:
  // Maps a new segment at the next free address; returns its start. The
  // fresh segment is stamped with the current write generation (its entire
  // content is "dirty" relative to any earlier epoch).
  uint64_t Map(MemorySegment segment);

  // ----- dirty-segment tracking (pre-copy, DESIGN.md §10) -----
  //
  // A monotonic write generation plus a per-segment stamp replace classic
  // dirty bits: starting a new epoch is one increment, and "dirtied since
  // epoch E" is `segment.dirty_gen >= E`. Several epochs can be live at
  // once (each pre-copy round keeps its own), which plain clear-on-read
  // bits cannot express.

  // The current write generation; writes stamp this value.
  uint64_t generation() const { return generation_; }

  // Starts a new dirty epoch and returns it: segments written from this
  // point on satisfy `dirty_gen >= epoch`.
  uint64_t BeginEpoch() { return ++generation_; }

  // Raises the write generation to at least `generation` (keeps several
  // address spaces of one app in lockstep across pre-copy rounds).
  void AlignGeneration(uint64_t generation) {
    if (generation > generation_) {
      generation_ = generation;
    }
  }

  // Overwrites `data.size()` bytes at `offset` within the segment mapped at
  // `start`, stamping the segment dirty at the current generation. The
  // write must land inside the segment's existing content.
  Status Write(uint64_t start, uint64_t offset, ByteSpan data);

  // Marks a whole segment dirty at the current generation without changing
  // its content (for callers that mutate `segments()` in place).
  Status Touch(uint64_t start);

  // Checkpointable content bytes of segments dirtied since `epoch`.
  uint64_t DirtyBytesSince(uint64_t epoch) const;

  // Number of checkpointed segments dirtied since `epoch`.
  int DirtySegmentsSince(uint64_t epoch) const;

  // Unmaps the segment starting at `start`.
  Status Unmap(uint64_t start);

  // Unmaps all segments of a given kind; returns how many were removed.
  int UnmapAllOfKind(SegmentKind kind);

  MemorySegment* Find(uint64_t start);
  MemorySegment* FindByName(std::string_view name);

  const std::vector<MemorySegment>& segments() const { return segments_; }
  std::vector<MemorySegment>& segments() { return segments_; }

  // Total mapped bytes / bytes that would enter a checkpoint image.
  uint64_t TotalMapped() const;
  uint64_t CheckpointableBytes() const;

  bool HasKind(SegmentKind kind) const;

 private:
  std::vector<MemorySegment> segments_;
  uint64_t next_addr_ = 0x4000'0000;
  // Write generation counter; starts at 1 so a freshly mapped segment
  // (dirty_gen = 1) reads as dirty against the never-begun epoch 0.
  uint64_t generation_ = 1;
};

}  // namespace flux

#endif  // FLUX_SRC_KERNEL_ADDRESS_SPACE_H_
