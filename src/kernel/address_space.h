// Per-process virtual memory model.
//
// CRIA's checkpoint image size is dominated by the process's memory
// segments, so the simulation represents them with real byte content: Dalvik
// heap and anonymous mappings carry synthetic semi-compressible data that
// flows through the LZ codec and the network model. File-backed, read-only
// mappings (the APK, framework libraries) are *not* serialized — they are
// re-mapped from the paired filesystem on restore, exactly why pairing syncs
// those files ahead of time. Vendor-library mappings (GPU) are flagged so
// CRIA can verify they were unloaded (eglUnload) before checkpoint.
#ifndef FLUX_SRC_KERNEL_ADDRESS_SPACE_H_
#define FLUX_SRC_KERNEL_ADDRESS_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"

namespace flux {

enum class SegmentKind : uint8_t {
  kAnonPrivate = 0,   // heap, stacks: content checkpointed
  kFileBackedRo,      // APK / libs: re-mapped by path on restore
  kFileBackedRw,      // data files mapped writable: dirty content checkpointed
  kAshmem,            // named shared memory: checkpointed with its name
  kPmem,              // physically contiguous (GPU/camera): must be freed
  kVendorLibrary,     // device-specific GL library text: must be unloaded
};

std::string_view SegmentKindName(SegmentKind kind);

struct MemorySegment {
  std::string name;        // e.g. "[heap]", "dalvik-main", "/system/lib/libgl.so"
  SegmentKind kind = SegmentKind::kAnonPrivate;
  uint64_t start = 0;      // virtual address
  Bytes content;           // empty for kFileBackedRo / kVendorLibrary
  uint64_t mapped_size = 0;  // full size even when content is not held
  std::string backing_path;  // for file-backed segments

  uint64_t size() const {
    return content.empty() ? mapped_size : content.size();
  }

  // True if the segment's bytes are part of a checkpoint image.
  bool checkpointed() const {
    switch (kind) {
      case SegmentKind::kAnonPrivate:
      case SegmentKind::kFileBackedRw:
      case SegmentKind::kAshmem:
        return true;
      case SegmentKind::kFileBackedRo:
      case SegmentKind::kPmem:
      case SegmentKind::kVendorLibrary:
        return false;
    }
    return false;
  }
};

class AddressSpace {
 public:
  // Maps a new segment at the next free address; returns its start.
  uint64_t Map(MemorySegment segment);

  // Unmaps the segment starting at `start`.
  Status Unmap(uint64_t start);

  // Unmaps all segments of a given kind; returns how many were removed.
  int UnmapAllOfKind(SegmentKind kind);

  MemorySegment* Find(uint64_t start);
  MemorySegment* FindByName(std::string_view name);

  const std::vector<MemorySegment>& segments() const { return segments_; }
  std::vector<MemorySegment>& segments() { return segments_; }

  // Total mapped bytes / bytes that would enter a checkpoint image.
  uint64_t TotalMapped() const;
  uint64_t CheckpointableBytes() const;

  bool HasKind(SegmentKind kind) const;

 private:
  std::vector<MemorySegment> segments_;
  uint64_t next_addr_ = 0x4000'0000;
};

}  // namespace flux

#endif  // FLUX_SRC_KERNEL_ADDRESS_SPACE_H_
