#include "src/kernel/process.h"

#include <algorithm>

#include "src/base/strings.h"

namespace flux {

Tid SimProcess::SpawnThread(std::string thread_name, uint64_t stack_size) {
  SimThread thread;
  thread.tid = next_tid_++;
  thread.name = std::move(thread_name);
  thread.stack_size = stack_size;
  threads_.push_back(std::move(thread));
  return threads_.back().tid;
}

Status SimProcess::KillThread(Tid tid) {
  auto it = std::find_if(threads_.begin(), threads_.end(),
                         [tid](const SimThread& t) { return t.tid == tid; });
  if (it == threads_.end()) {
    return NotFound(StrFormat("no thread %d in pid %d", tid, pid_));
  }
  threads_.erase(it);
  return OkStatus();
}

SimThread* SimProcess::FindThread(Tid tid) {
  for (auto& thread : threads_) {
    if (thread.tid == tid) {
      return &thread;
    }
  }
  return nullptr;
}

Fd SimProcess::InstallFd(std::shared_ptr<FdObject> object) {
  while (fd_table_.count(next_fd_) > 0 || IsReservedFd(next_fd_)) {
    ++next_fd_;
  }
  const Fd fd = next_fd_++;
  fd_table_[fd] = std::move(object);
  return fd;
}

Status SimProcess::InstallFdAt(Fd fd, std::shared_ptr<FdObject> object) {
  if (fd < 0) {
    return InvalidArgument("negative fd");
  }
  if (fd_table_.count(fd) > 0) {
    return AlreadyExists(StrFormat("fd %d already open in pid %d", fd, pid_));
  }
  // Installing at a reserved slot consumes the reservation.
  reserved_fds_.erase(
      std::remove(reserved_fds_.begin(), reserved_fds_.end(), fd),
      reserved_fds_.end());
  fd_table_[fd] = std::move(object);
  return OkStatus();
}

Status SimProcess::DupFd(Fd source, Fd target) {
  auto it = fd_table_.find(source);
  if (it == fd_table_.end()) {
    return NotFound(StrFormat("dup2: fd %d not open in pid %d", source, pid_));
  }
  if (target < 0) {
    return InvalidArgument("dup2: negative target fd");
  }
  reserved_fds_.erase(
      std::remove(reserved_fds_.begin(), reserved_fds_.end(), target),
      reserved_fds_.end());
  fd_table_[target] = it->second;
  return OkStatus();
}

Status SimProcess::CloseFd(Fd fd) {
  if (fd_table_.erase(fd) == 0) {
    return NotFound(StrFormat("close: fd %d not open in pid %d", fd, pid_));
  }
  return OkStatus();
}

std::shared_ptr<FdObject> SimProcess::LookupFd(Fd fd) const {
  auto it = fd_table_.find(fd);
  return it == fd_table_.end() ? nullptr : it->second;
}

Status SimProcess::ReserveFd(Fd fd) {
  if (fd_table_.count(fd) > 0) {
    return AlreadyExists(StrFormat("fd %d already open in pid %d", fd, pid_));
  }
  if (!IsReservedFd(fd)) {
    reserved_fds_.push_back(fd);
  }
  return OkStatus();
}

bool SimProcess::IsReservedFd(Fd fd) const {
  return std::find(reserved_fds_.begin(), reserved_fds_.end(), fd) !=
         reserved_fds_.end();
}

}  // namespace flux
