// Simulated process and thread state.
//
// A SimProcess is the unit CRIA checkpoints: threads, address space, file
// descriptor table, and per-process driver state (Binder handle tables live
// in the BinderDriver keyed by pid). Processes execute no real code — app
// behaviour is driven by the apps module which mutates this state through
// kernel and service calls, advancing simulated time.
#ifndef FLUX_SRC_KERNEL_PROCESS_H_
#define FLUX_SRC_KERNEL_PROCESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/kernel/address_space.h"
#include "src/kernel/fd_object.h"
#include "src/kernel/ids.h"

namespace flux {

enum class ThreadState : uint8_t {
  kRunnable = 0,
  kSleeping,
  kBlockedOnBinder,
  kStopped,
};

struct SimThread {
  Tid tid = 0;
  std::string name;
  ThreadState state = ThreadState::kRunnable;
  uint64_t stack_size = 0;
  int priority = 0;  // nice value
};

class SimProcess {
 public:
  SimProcess(Pid pid, Uid uid, std::string name)
      : pid_(pid), uid_(uid), name_(std::move(name)) {}

  Pid pid() const { return pid_; }
  Uid uid() const { return uid_; }
  const std::string& name() const { return name_; }

  // The pid this process observes inside its namespace (== pid() unless the
  // process was restored into a private PID namespace).
  Pid virtual_pid() const { return virtual_pid_; }
  void set_virtual_pid(Pid pid) { virtual_pid_ = pid; }
  int pid_namespace() const { return pid_namespace_; }
  void set_pid_namespace(int ns) { pid_namespace_ = ns; }

  // ----- threads -----
  Tid SpawnThread(std::string thread_name, uint64_t stack_size = 1 << 20);
  Status KillThread(Tid tid);
  std::vector<SimThread>& threads() { return threads_; }
  const std::vector<SimThread>& threads() const { return threads_; }
  SimThread* FindThread(Tid tid);

  // ----- memory -----
  AddressSpace& address_space() { return address_space_; }
  const AddressSpace& address_space() const { return address_space_; }

  // ----- file descriptors -----
  Fd InstallFd(std::shared_ptr<FdObject> object);
  Status InstallFdAt(Fd fd, std::shared_ptr<FdObject> object);
  // dup2: closes `target` if open, then points it at `source`'s object.
  Status DupFd(Fd source, Fd target);
  Status CloseFd(Fd fd);
  std::shared_ptr<FdObject> LookupFd(Fd fd) const;
  const std::map<Fd, std::shared_ptr<FdObject>>& fd_table() const {
    return fd_table_;
  }

  // Reserves an fd number without an object behind it (restore-time
  // placeholder for sockets that Adaptive Replay reconnects, §3.2).
  Status ReserveFd(Fd fd);
  bool IsReservedFd(Fd fd) const;

  // ----- lifecycle flags -----
  bool running() const { return running_; }
  void set_running(bool running) { running_ = running; }

  // Jail root applied at restore (wrapper app chroots the restored app to
  // the paired filesystem view, §3.1).
  const std::string& jail_root() const { return jail_root_; }
  void set_jail_root(std::string root) { jail_root_ = std::move(root); }

 private:
  Pid pid_;
  Uid uid_;
  std::string name_;
  Pid virtual_pid_ = kInvalidPid;
  int pid_namespace_ = 0;  // 0 = root namespace
  bool running_ = true;
  std::string jail_root_;

  Tid next_tid_ = 1;
  std::vector<SimThread> threads_;
  AddressSpace address_space_;

  Fd next_fd_ = 3;  // 0..2 conceptually stdio
  std::map<Fd, std::shared_ptr<FdObject>> fd_table_;
  std::vector<Fd> reserved_fds_;
};

}  // namespace flux

#endif  // FLUX_SRC_KERNEL_PROCESS_H_
