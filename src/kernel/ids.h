// Kernel identifier types.
#ifndef FLUX_SRC_KERNEL_IDS_H_
#define FLUX_SRC_KERNEL_IDS_H_

#include <cstdint>

namespace flux {

using Pid = int32_t;
using Tid = int32_t;
using Uid = int32_t;
using Fd = int32_t;

constexpr Pid kInvalidPid = -1;
constexpr Fd kInvalidFd = -1;

// Android assigns each app a uid at install time starting here.
constexpr Uid kFirstAppUid = 10000;
constexpr Uid kSystemUid = 1000;

}  // namespace flux

#endif  // FLUX_SRC_KERNEL_IDS_H_
