// File-descriptor objects.
//
// Every entry in a SimProcess's fd table points at an FdObject. CRIA must be
// able to checkpoint each kind of descriptor an Android app holds at
// migration time and recreate an equivalent object on the guest kernel:
// regular files reopen by path, pipes are recreated pairwise, Unix domain
// sockets are reserved by descriptor number and reconnected by Adaptive
// Replay (SensorService channels, §3.2), and Android driver fds (logger,
// ashmem, binder) get driver-specific handling (§3.3).
#ifndef FLUX_SRC_KERNEL_FD_OBJECT_H_
#define FLUX_SRC_KERNEL_FD_OBJECT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/base/bytes.h"
#include "src/kernel/ids.h"

namespace flux {

enum class FdKind : uint8_t {
  kRegularFile = 0,
  kPipeRead,
  kPipeWrite,
  kUnixSocket,
  kAshmem,
  kPmem,
  kLogger,
  kAlarmDev,
  kWakelockDev,
  kBinder,
  kEventFd,
};

std::string_view FdKindName(FdKind kind);

class FdObject {
 public:
  explicit FdObject(FdKind kind) : kind_(kind) {}
  virtual ~FdObject() = default;

  FdKind kind() const { return kind_; }

 private:
  FdKind kind_;
};

// A regular file opened from the device filesystem.
class RegularFileFd : public FdObject {
 public:
  RegularFileFd(std::string path, uint64_t offset, bool writable)
      : FdObject(FdKind::kRegularFile),
        path_(std::move(path)),
        offset_(offset),
        writable_(writable) {}

  const std::string& path() const { return path_; }
  uint64_t offset() const { return offset_; }
  void set_offset(uint64_t offset) { offset_ = offset; }
  bool writable() const { return writable_; }

 private:
  std::string path_;
  uint64_t offset_ = 0;
  bool writable_ = false;
};

// Shared in-kernel pipe buffer; read and write fds reference it.
class PipeBuffer {
 public:
  Bytes& data() { return data_; }
  const Bytes& data() const { return data_; }

 private:
  Bytes data_;
};

class PipeFd : public FdObject {
 public:
  PipeFd(FdKind end, std::shared_ptr<PipeBuffer> buffer, uint64_t pipe_id)
      : FdObject(end), buffer_(std::move(buffer)), pipe_id_(pipe_id) {}

  PipeBuffer& buffer() { return *buffer_; }
  const PipeBuffer& buffer() const { return *buffer_; }
  std::shared_ptr<PipeBuffer> shared_buffer() const { return buffer_; }
  uint64_t pipe_id() const { return pipe_id_; }

 private:
  std::shared_ptr<PipeBuffer> buffer_;
  uint64_t pipe_id_;  // pairs read/write ends in checkpoints
};

// Unix domain socket endpoint. The simulation models only connected
// SOCK_SEQPACKET-style endpoints as used by SensorService event channels:
// `peer_tag` identifies the service-side endpoint so Adaptive Replay can
// re-establish the connection and dup2 it onto the reserved fd number.
class UnixSocketFd : public FdObject {
 public:
  UnixSocketFd(std::string peer_tag, uint64_t connection_id)
      : FdObject(FdKind::kUnixSocket),
        peer_tag_(std::move(peer_tag)),
        connection_id_(connection_id) {}

  const std::string& peer_tag() const { return peer_tag_; }
  uint64_t connection_id() const { return connection_id_; }
  bool connected() const { return connected_; }
  void set_connected(bool connected) { connected_ = connected; }

 private:
  std::string peer_tag_;
  uint64_t connection_id_;
  bool connected_ = true;
};

// Android ashmem region (named anonymous shared memory).
class AshmemFd : public FdObject {
 public:
  AshmemFd(std::string name, uint64_t size)
      : FdObject(FdKind::kAshmem), name_(std::move(name)), size_(size) {}

  const std::string& name() const { return name_; }
  uint64_t size() const { return size_; }

 private:
  std::string name_;
  uint64_t size_;
};

// Physically contiguous allocation (GPU and camera buffers). pmem regions
// are device-specific and must be freed before checkpoint (§3.3).
class PmemFd : public FdObject {
 public:
  explicit PmemFd(uint64_t size) : FdObject(FdKind::kPmem), size_(size) {}
  uint64_t size() const { return size_; }

 private:
  uint64_t size_;
};

// /dev/log/* writer; stateless per process beyond the open itself.
class LoggerFd : public FdObject {
 public:
  explicit LoggerFd(std::string log_name)
      : FdObject(FdKind::kLogger), log_name_(std::move(log_name)) {}
  const std::string& log_name() const { return log_name_; }

 private:
  std::string log_name_;
};

// /dev/binder; per-process Binder state lives in the BinderDriver keyed by
// pid, so the fd itself is just a marker.
class BinderFd : public FdObject {
 public:
  BinderFd() : FdObject(FdKind::kBinder) {}
};

}  // namespace flux

#endif  // FLUX_SRC_KERNEL_FD_OBJECT_H_
