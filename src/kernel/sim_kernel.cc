#include "src/kernel/sim_kernel.h"

#include <algorithm>

#include "src/base/strings.h"

namespace flux {

SimProcess& SimKernel::CreateProcess(std::string name, Uid uid) {
  const Pid pid = next_pid_++;
  auto process = std::make_unique<SimProcess>(pid, uid, std::move(name));
  process->set_virtual_pid(pid);  // root namespace: virtual == real
  process->SpawnThread("main");
  auto [it, inserted] = processes_.emplace(pid, std::move(process));
  (void)inserted;
  return *it->second;
}

Status SimKernel::KillProcess(Pid pid) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) {
    return NotFound(StrFormat("no process %d", pid));
  }
  pmem_.FreeAllOf(pid);
  const int ns = it->second->pid_namespace();
  if (ns != 0) {
    auto& taken = namespace_pids_[ns];
    taken.erase(std::remove(taken.begin(), taken.end(),
                            it->second->virtual_pid()),
                taken.end());
  }
  processes_.erase(it);
  return OkStatus();
}

SimProcess* SimKernel::FindProcess(Pid pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

const SimProcess* SimKernel::FindProcess(Pid pid) const {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

std::vector<Pid> SimKernel::ProcessesOfUid(Uid uid) const {
  std::vector<Pid> out;
  for (const auto& [pid, process] : processes_) {
    if (process->uid() == uid) {
      out.push_back(pid);
    }
  }
  return out;
}

int SimKernel::CreatePidNamespace() { return next_namespace_++; }

Result<SimProcess*> SimKernel::CreateProcessInNamespace(std::string name,
                                                        Uid uid, int ns,
                                                        Pid virtual_pid) {
  if (ns <= 0 || ns >= next_namespace_) {
    return InvalidArgument(StrFormat("no such pid namespace %d", ns));
  }
  auto& taken = namespace_pids_[ns];
  if (std::find(taken.begin(), taken.end(), virtual_pid) != taken.end()) {
    return AlreadyExists(
        StrFormat("virtual pid %d already taken in namespace %d", virtual_pid,
                  ns));
  }
  SimProcess& process = CreateProcess(std::move(name), uid);
  process.set_pid_namespace(ns);
  process.set_virtual_pid(virtual_pid);
  taken.push_back(virtual_pid);
  return &process;
}

}  // namespace flux
