// Android-specific kernel drivers (§2, §3.3).
//
// CRIA has to consider the state of each of these at migration time:
//  - Logger: used like a regular file, no per-process state to checkpoint.
//  - ashmem: named shared memory; supported, though Dalvik is modified to
//    use plain mmap so apps normally hold none at checkpoint.
//  - pmem: physically contiguous GPU/camera buffers; device-specific, must
//    be freed by the preparation phase before checkpoint.
//  - wakelocks: only held by system services on behalf of apps, so their
//    app-facing state migrates via Selective Record/Adaptive Replay.
//  - alarm driver: backs AlarmManagerService; same story as wakelocks.
#ifndef FLUX_SRC_KERNEL_DRIVERS_H_
#define FLUX_SRC_KERNEL_DRIVERS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/sim_clock.h"
#include "src/kernel/ids.h"

namespace flux {

// ----- Logger -----

struct LogEntry {
  SimTime time = 0;
  Pid pid = 0;
  std::string tag;
  std::string message;
};

class LoggerDriver {
 public:
  explicit LoggerDriver(size_t capacity = 4096) : capacity_(capacity) {}

  void Append(std::string_view log_name, LogEntry entry);
  const std::deque<LogEntry>& buffer(const std::string& log_name) const;
  size_t TotalEntries() const;

 private:
  size_t capacity_;
  std::map<std::string, std::deque<LogEntry>> buffers_;
};

// ----- ashmem -----

class AshmemDriver {
 public:
  // Creates a region; returns a region id.
  uint64_t CreateRegion(Pid owner, std::string name, uint64_t size);
  Status ReleaseRegion(uint64_t region_id);
  // Regions currently owned by `pid`.
  std::vector<uint64_t> RegionsOf(Pid pid) const;
  uint64_t BytesOf(Pid pid) const;
  size_t region_count() const { return regions_.size(); }

  struct Region {
    Pid owner = 0;
    std::string name;
    uint64_t size = 0;
  };
  const Region* FindRegion(uint64_t region_id) const;

 private:
  uint64_t next_id_ = 1;
  std::map<uint64_t, Region> regions_;
};

// ----- pmem -----

class PmemDriver {
 public:
  explicit PmemDriver(uint64_t pool_size) : pool_size_(pool_size) {}

  Result<uint64_t> Allocate(Pid owner, uint64_t size);  // returns alloc id
  Status Free(uint64_t alloc_id);
  void FreeAllOf(Pid pid);
  uint64_t BytesOf(Pid pid) const;
  uint64_t bytes_in_use() const { return in_use_; }
  uint64_t pool_size() const { return pool_size_; }

 private:
  struct Alloc {
    Pid owner = 0;
    uint64_t size = 0;
  };
  uint64_t pool_size_;
  uint64_t in_use_ = 0;
  uint64_t next_id_ = 1;
  std::map<uint64_t, Alloc> allocs_;
};

// ----- wakelocks -----

class WakelockDriver {
 public:
  void Acquire(std::string name, Pid holder);
  Status Release(const std::string& name, Pid holder);
  bool IsHeld(const std::string& name) const;
  // True if any lock is held -> device must stay awake.
  bool AnyHeld() const;
  std::vector<std::string> LocksHeldBy(Pid pid) const;

 private:
  // name -> holders (a pid may hold the same lock multiple times).
  std::map<std::string, std::vector<Pid>> locks_;
};

// ----- alarm driver -----

struct KernelAlarm {
  uint64_t id = 0;
  SimTime trigger_time = 0;
  std::string cookie;  // opaque payload set by AlarmManagerService
};

class AlarmDriver {
 public:
  uint64_t SetAlarm(SimTime trigger_time, std::string cookie);
  Status CancelAlarm(uint64_t id);
  // Pops all alarms with trigger_time <= now, in trigger order.
  std::vector<KernelAlarm> FireDue(SimTime now);
  const std::map<uint64_t, KernelAlarm>& pending() const { return pending_; }

 private:
  uint64_t next_id_ = 1;
  std::map<uint64_t, KernelAlarm> pending_;
};

}  // namespace flux

#endif  // FLUX_SRC_KERNEL_DRIVERS_H_
