#include "src/kernel/address_space.h"

#include <algorithm>

namespace flux {

std::string_view SegmentKindName(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kAnonPrivate:
      return "anon";
    case SegmentKind::kFileBackedRo:
      return "file_ro";
    case SegmentKind::kFileBackedRw:
      return "file_rw";
    case SegmentKind::kAshmem:
      return "ashmem";
    case SegmentKind::kPmem:
      return "pmem";
    case SegmentKind::kVendorLibrary:
      return "vendor_lib";
  }
  return "unknown";
}

uint64_t AddressSpace::Map(MemorySegment segment) {
  constexpr uint64_t kPage = 4096;
  segment.start = next_addr_;
  segment.dirty_gen = generation_;
  const uint64_t size = std::max<uint64_t>(segment.size(), kPage);
  next_addr_ += (size + kPage - 1) / kPage * kPage + kPage;  // guard page
  segments_.push_back(std::move(segment));
  return segments_.back().start;
}

Status AddressSpace::Write(uint64_t start, uint64_t offset, ByteSpan data) {
  MemorySegment* segment = Find(start);
  if (segment == nullptr) {
    return NotFound("no segment at given address");
  }
  if (offset + data.size() > segment->content.size()) {
    return InvalidArgument("write past end of segment content");
  }
  std::copy(data.begin(), data.end(), segment->content.begin() + offset);
  segment->dirty_gen = generation_;
  return OkStatus();
}

Status AddressSpace::Touch(uint64_t start) {
  MemorySegment* segment = Find(start);
  if (segment == nullptr) {
    return NotFound("no segment at given address");
  }
  segment->dirty_gen = generation_;
  return OkStatus();
}

uint64_t AddressSpace::DirtyBytesSince(uint64_t epoch) const {
  uint64_t total = 0;
  for (const auto& segment : segments_) {
    if (segment.checkpointed() && segment.dirty_gen >= epoch) {
      total += segment.content.size();
    }
  }
  return total;
}

int AddressSpace::DirtySegmentsSince(uint64_t epoch) const {
  int count = 0;
  for (const auto& segment : segments_) {
    if (segment.checkpointed() && segment.dirty_gen >= epoch) {
      ++count;
    }
  }
  return count;
}

Status AddressSpace::Unmap(uint64_t start) {
  auto it = std::find_if(
      segments_.begin(), segments_.end(),
      [start](const MemorySegment& s) { return s.start == start; });
  if (it == segments_.end()) {
    return NotFound("no segment at given address");
  }
  segments_.erase(it);
  return OkStatus();
}

int AddressSpace::UnmapAllOfKind(SegmentKind kind) {
  const auto old_size = segments_.size();
  segments_.erase(
      std::remove_if(segments_.begin(), segments_.end(),
                     [kind](const MemorySegment& s) { return s.kind == kind; }),
      segments_.end());
  return static_cast<int>(old_size - segments_.size());
}

MemorySegment* AddressSpace::Find(uint64_t start) {
  for (auto& segment : segments_) {
    if (segment.start == start) {
      return &segment;
    }
  }
  return nullptr;
}

MemorySegment* AddressSpace::FindByName(std::string_view name) {
  for (auto& segment : segments_) {
    if (segment.name == name) {
      return &segment;
    }
  }
  return nullptr;
}

uint64_t AddressSpace::TotalMapped() const {
  uint64_t total = 0;
  for (const auto& segment : segments_) {
    total += segment.size();
  }
  return total;
}

uint64_t AddressSpace::CheckpointableBytes() const {
  uint64_t total = 0;
  for (const auto& segment : segments_) {
    if (segment.checkpointed()) {
      total += segment.content.size();
    }
  }
  return total;
}

bool AddressSpace::HasKind(SegmentKind kind) const {
  return std::any_of(segments_.begin(), segments_.end(),
                     [kind](const MemorySegment& s) { return s.kind == kind; });
}

}  // namespace flux
