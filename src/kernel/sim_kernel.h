// The simulated Android/Linux kernel owned by each device.
//
// Owns processes, PID namespaces, and the Android drivers. Kernel versions
// differ across devices (Nexus 7 2012 runs 3.1, Nexus 7 2013 runs 3.4); Flux
// migrates across them because CRIA serializes state at the abstraction
// level of this interface rather than raw kernel internals.
#ifndef FLUX_SRC_KERNEL_SIM_KERNEL_H_
#define FLUX_SRC_KERNEL_SIM_KERNEL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/kernel/drivers.h"
#include "src/kernel/process.h"

namespace flux {

class SimKernel {
 public:
  explicit SimKernel(std::string version, uint64_t pmem_pool = 256 * 1024 * 1024)
      : version_(std::move(version)), pmem_(pmem_pool) {}

  const std::string& version() const { return version_; }

  // ----- processes -----
  SimProcess& CreateProcess(std::string name, Uid uid);
  Status KillProcess(Pid pid);
  SimProcess* FindProcess(Pid pid);
  const SimProcess* FindProcess(Pid pid) const;
  std::vector<Pid> ProcessesOfUid(Uid uid) const;
  size_t process_count() const { return processes_.size(); }

  // ----- PID namespaces -----
  // Creates a private PID namespace; processes created within it observe
  // their own virtual pid numbering starting at 1 (Zap-style, §3.3).
  int CreatePidNamespace();
  // Creates a process inside namespace `ns` whose *virtual* pid is forced to
  // `virtual_pid` (restore path). Fails if that virtual pid is taken in ns.
  Result<SimProcess*> CreateProcessInNamespace(std::string name, Uid uid,
                                               int ns, Pid virtual_pid);

  // ----- drivers -----
  LoggerDriver& logger() { return logger_; }
  AshmemDriver& ashmem() { return ashmem_; }
  PmemDriver& pmem() { return pmem_; }
  WakelockDriver& wakelocks() { return wakelocks_; }
  AlarmDriver& alarm_driver() { return alarm_driver_; }
  const AlarmDriver& alarm_driver() const { return alarm_driver_; }

 private:
  std::string version_;
  Pid next_pid_ = 100;
  int next_namespace_ = 1;
  std::map<Pid, std::unique_ptr<SimProcess>> processes_;
  // ns -> set of taken virtual pids.
  std::map<int, std::vector<Pid>> namespace_pids_;

  LoggerDriver logger_;
  AshmemDriver ashmem_;
  PmemDriver pmem_;
  WakelockDriver wakelocks_;
  AlarmDriver alarm_driver_;
};

}  // namespace flux

#endif  // FLUX_SRC_KERNEL_SIM_KERNEL_H_
