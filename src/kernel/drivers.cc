#include "src/kernel/drivers.h"

#include <algorithm>

namespace flux {

// ----- LoggerDriver -----

void LoggerDriver::Append(std::string_view log_name, LogEntry entry) {
  auto& buffer = buffers_[std::string(log_name)];
  buffer.push_back(std::move(entry));
  while (buffer.size() > capacity_) {
    buffer.pop_front();
  }
}

const std::deque<LogEntry>& LoggerDriver::buffer(
    const std::string& log_name) const {
  static const std::deque<LogEntry> kEmpty;
  auto it = buffers_.find(log_name);
  return it == buffers_.end() ? kEmpty : it->second;
}

size_t LoggerDriver::TotalEntries() const {
  size_t total = 0;
  for (const auto& [name, buffer] : buffers_) {
    (void)name;
    total += buffer.size();
  }
  return total;
}

// ----- AshmemDriver -----

uint64_t AshmemDriver::CreateRegion(Pid owner, std::string name,
                                    uint64_t size) {
  const uint64_t id = next_id_++;
  regions_[id] = Region{owner, std::move(name), size};
  return id;
}

Status AshmemDriver::ReleaseRegion(uint64_t region_id) {
  if (regions_.erase(region_id) == 0) {
    return NotFound("no such ashmem region");
  }
  return OkStatus();
}

std::vector<uint64_t> AshmemDriver::RegionsOf(Pid pid) const {
  std::vector<uint64_t> out;
  for (const auto& [id, region] : regions_) {
    if (region.owner == pid) {
      out.push_back(id);
    }
  }
  return out;
}

uint64_t AshmemDriver::BytesOf(Pid pid) const {
  uint64_t total = 0;
  for (const auto& [id, region] : regions_) {
    (void)id;
    if (region.owner == pid) {
      total += region.size;
    }
  }
  return total;
}

const AshmemDriver::Region* AshmemDriver::FindRegion(uint64_t region_id) const {
  auto it = regions_.find(region_id);
  return it == regions_.end() ? nullptr : &it->second;
}

// ----- PmemDriver -----

Result<uint64_t> PmemDriver::Allocate(Pid owner, uint64_t size) {
  if (in_use_ + size > pool_size_) {
    return ResourceExhausted("pmem pool exhausted");
  }
  const uint64_t id = next_id_++;
  allocs_[id] = Alloc{owner, size};
  in_use_ += size;
  return id;
}

Status PmemDriver::Free(uint64_t alloc_id) {
  auto it = allocs_.find(alloc_id);
  if (it == allocs_.end()) {
    return NotFound("no such pmem allocation");
  }
  in_use_ -= it->second.size;
  allocs_.erase(it);
  return OkStatus();
}

void PmemDriver::FreeAllOf(Pid pid) {
  for (auto it = allocs_.begin(); it != allocs_.end();) {
    if (it->second.owner == pid) {
      in_use_ -= it->second.size;
      it = allocs_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t PmemDriver::BytesOf(Pid pid) const {
  uint64_t total = 0;
  for (const auto& [id, alloc] : allocs_) {
    (void)id;
    if (alloc.owner == pid) {
      total += alloc.size;
    }
  }
  return total;
}

// ----- WakelockDriver -----

void WakelockDriver::Acquire(std::string name, Pid holder) {
  locks_[std::move(name)].push_back(holder);
}

Status WakelockDriver::Release(const std::string& name, Pid holder) {
  auto it = locks_.find(name);
  if (it == locks_.end()) {
    return NotFound("wakelock not held: " + name);
  }
  auto& holders = it->second;
  auto pos = std::find(holders.begin(), holders.end(), holder);
  if (pos == holders.end()) {
    return NotFound("wakelock not held by caller: " + name);
  }
  holders.erase(pos);
  if (holders.empty()) {
    locks_.erase(it);
  }
  return OkStatus();
}

bool WakelockDriver::IsHeld(const std::string& name) const {
  return locks_.count(name) > 0;
}

bool WakelockDriver::AnyHeld() const { return !locks_.empty(); }

std::vector<std::string> WakelockDriver::LocksHeldBy(Pid pid) const {
  std::vector<std::string> out;
  for (const auto& [name, holders] : locks_) {
    if (std::find(holders.begin(), holders.end(), pid) != holders.end()) {
      out.push_back(name);
    }
  }
  return out;
}

// ----- AlarmDriver -----

uint64_t AlarmDriver::SetAlarm(SimTime trigger_time, std::string cookie) {
  const uint64_t id = next_id_++;
  pending_[id] = KernelAlarm{id, trigger_time, std::move(cookie)};
  return id;
}

Status AlarmDriver::CancelAlarm(uint64_t id) {
  if (pending_.erase(id) == 0) {
    return NotFound("no such kernel alarm");
  }
  return OkStatus();
}

std::vector<KernelAlarm> AlarmDriver::FireDue(SimTime now) {
  std::vector<KernelAlarm> due;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.trigger_time <= now) {
      due.push_back(it->second);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(due.begin(), due.end(),
            [](const KernelAlarm& a, const KernelAlarm& b) {
              return a.trigger_time < b.trigger_time ||
                     (a.trigger_time == b.trigger_time && a.id < b.id);
            });
  return due;
}

}  // namespace flux
